"""`repro.obs.live` — the streaming telemetry plane.

Everything else in :mod:`repro.obs` is post-hoc: traces, metrics and
blame reports only exist once a replay has drained. This module turns the
same probe/metric/flow machinery into a *live*, per-tenant ops surface:

* :class:`TelemetryBus` — an in-process bounded ring of
  :class:`BusEvent` records with subscriber cursors and drop-counting
  backpressure. Tracer spans (on close), instants, probe samples, SLO
  alerts, controller decisions and service job-lifecycle transitions
  publish onto the bus *as they happen in DES time*. The bus attaches to
  a recording :class:`~repro.obs.tracer.Tracer`
  (``tracer.attach_bus(bus)``); under the shared
  :data:`~repro.obs.tracer.NULL_TRACER` every publish site compiles out
  to the existing ``tracer.enabled`` check, so the <5% disabled-tracer
  overhead guard is untouched.
* :class:`SloObjective` + :class:`BurnRateMonitor` — tenant-scoped SLO
  objectives with rolling burn-rate evaluation over fast and slow
  windows (the multi-window SRE pattern): an observation is *bad* when
  it exceeds the objective's target, the burn rate is the bad fraction
  over the window divided by the error budget, and a structured
  :class:`Alert` fires when both windows burn too hot. A sustained
  violation is one alert until the objective recovers, replacing the
  fire-once ``slo.breach`` instants as the alerting surface.
* :func:`render_top` — the refreshing text frame behind ``repro top``:
  per-tenant queue depth, cache hit rate, worker occupancy, active
  alerts and a controller-decision ticker over a draining
  :class:`~repro.service.api.CampaignService`.

Determinism contract: bus events carry only DES-clock timestamps and
DES-derived payloads — no wall time, no host state — so the JSONL stream
of a same-seed campaign is byte-identical across runs.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

__all__ = [
    "Alert",
    "BusEvent",
    "BusSubscriber",
    "BurnRateMonitor",
    "SloObjective",
    "TelemetryBus",
    "default_objectives",
    "event_to_json",
    "render_top",
]

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.api import CampaignService

#: Canonical event kinds (the ``kind`` field of every :class:`BusEvent`).
KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_PROBE = "probe"
KIND_ALERT = "alert"
KIND_JOB = "job"
KIND_DECISION = "decision"
KIND_CAPACITY = "capacity"


@dataclass(frozen=True)
class BusEvent:
    """One telemetry event on the bus (immutable once published).

    ``t`` is the publishing clock's time: service-engine seconds for
    service-layer events, job-local replay seconds for events published
    inside an inner replay engine. ``tenant``/``job_id`` attribute the
    event to its tenant — propagated through the two-level DES by the
    tracer's ambient context (see :meth:`Tracer.context
    <repro.obs.tracer.Tracer.context>`).
    """

    seq: int
    t: float
    kind: str
    name: str
    lane: str
    tenant: str | None
    job_id: str | None
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "kind": self.kind,
                "name": self.name, "lane": self.lane, "tenant": self.tenant,
                "job_id": self.job_id, "data": self.data}


def event_to_json(event: BusEvent) -> str:
    """One canonical JSONL line for an event (sorted keys, ``str``
    fallback for non-JSON payload values — byte-stable across runs)."""
    return json.dumps(event.to_dict(), sort_keys=True, default=str,
                      separators=(",", ":"))


class BusSubscriber:
    """A cursor over the bus. Falling behind the ring loses the oldest
    events — :attr:`dropped` counts them; the cursor never goes
    backwards."""

    __slots__ = ("bus", "name", "cursor", "dropped")

    def __init__(self, bus: "TelemetryBus", name: str) -> None:
        self.bus = bus
        self.name = name
        #: Next sequence number this subscriber will read.
        self.cursor = bus.start_seq
        #: Events this subscriber lost to ring overflow.
        self.dropped = 0

    def poll(self, max_events: int | None = None) -> list[BusEvent]:
        """Events published since the last poll (oldest first).

        If the ring overflowed past the cursor, the lost events are
        added to :attr:`dropped` and the cursor jumps forward to the
        oldest retained event — it never moves backwards.
        """
        bus = self.bus
        if self.cursor < bus.start_seq:
            self.dropped += bus.start_seq - self.cursor
            self.cursor = bus.start_seq
        lo = self.cursor - bus.start_seq
        events = list(bus.ring)[lo:]
        if max_events is not None and len(events) > max_events:
            events = events[:max_events]
        self.cursor += len(events)
        return events

    @property
    def pending(self) -> int:
        """Events currently waiting between cursor and head (overflow
        losses not included)."""
        return self.bus.published - max(self.cursor, self.bus.start_seq)


class TelemetryBus:
    """Bounded in-process event ring with independent subscriber cursors.

    ``publish`` is an O(1) append; once ``capacity`` events are retained
    the oldest is evicted (``dropped_total`` counts evictions — the
    backpressure signal). Subscribers each hold their own cursor and
    observe their personal losses via :attr:`BusSubscriber.dropped`.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.ring: deque[BusEvent] = deque()
        #: Total events ever published (the next event's seq).
        self.published = 0
        #: Sequence number of the oldest retained event.
        self.start_seq = 0
        #: Events evicted from the ring (ring overflow backpressure).
        self.dropped_total = 0
        #: Evictions broken down by the evicted event's ``kind`` — loss
        #: of any one stream (e.g. ``capacity``) stays attributable even
        #: when another kind dominates the churn.
        self.dropped_by_kind: dict[str, int] = {}
        self.subscribers: list[BusSubscriber] = []

    def publish(self, kind: str, name: str, *, t: float, lane: str = "bus",
                tenant: str | None = None, job_id: str | None = None,
                **data: Any) -> BusEvent:
        event = BusEvent(seq=self.published, t=t, kind=kind, name=name,
                         lane=lane, tenant=tenant, job_id=job_id, data=data)
        self.ring.append(event)
        self.published += 1
        if len(self.ring) > self.capacity:
            evicted = self.ring.popleft()
            self.start_seq += 1
            self.dropped_total += 1
            self.dropped_by_kind[evicted.kind] = (
                self.dropped_by_kind.get(evicted.kind, 0) + 1)
        return event

    def subscribe(self, name: str = "subscriber") -> BusSubscriber:
        sub = BusSubscriber(self, name)
        self.subscribers.append(sub)
        return sub

    def __len__(self) -> int:
        return len(self.ring)


# ---------------------------------------------------------------------------
# SLO objectives and rolling burn-rate evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloObjective:
    """A tenant-scoped service-level objective with an error budget.

    An observation of ``metric`` is *good* iff ``value <= target``. The
    burn rate over a window is ``bad_fraction / budget`` — burn 1.0
    consumes the budget exactly at the sustainable rate; burn N eats it
    N times too fast. An :class:`Alert` fires when the fast window burns
    at ``>= fast_burn`` *and* the slow window at ``>= slow_burn``
    (the fast window catches the onset, the slow window keeps one
    recovered blip from re-paging).
    """

    name: str
    #: Observation stream this objective judges (``queue_wait_s``,
    #: ``makespan_slowdown``, or any published metric name).
    metric: str
    #: Good iff observation <= target.
    target: float
    #: Allowed bad fraction of observations (the error budget).
    budget: float = 0.25
    #: Rolling windows, in seconds of the observing clock.
    fast_window: float = 300.0
    slow_window: float = 1200.0
    #: Burn-rate thresholds per window.
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("windows must be > 0")
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"fast_window ({self.fast_window}) must not exceed "
                f"slow_window ({self.slow_window})")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be > 0")

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "metric": self.metric,
                "target": self.target, "budget": self.budget,
                "fast_window": self.fast_window,
                "slow_window": self.slow_window,
                "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
                "severity": self.severity}


def default_objectives(queue_wait_target: float = 90.0,
                       slowdown_target: float = 3.5
                       ) -> tuple[SloObjective, ...]:
    """The default tenant objectives for the campaign service.

    * ``queue-wait`` — a tenant's jobs dispatch within
      ``queue_wait_target`` service seconds of enqueue (worker-contention
      QoS);
    * ``makespan-slowdown`` — a job's replay makespan stays under
      ``slowdown_target``x its pure-simulation time
      (``n_steps * sim_step_time``); fault-driven retries, stalls and
      lease recoveries push it past the target.
    """
    return (
        SloObjective(name="queue-wait", metric="queue_wait_s",
                     target=queue_wait_target),
        SloObjective(name="makespan-slowdown", metric="makespan_slowdown",
                     target=slowdown_target),
    )


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert (structured; published as a bus event)."""

    tenant: str
    objective: str
    metric: str
    severity: str
    t: float
    value: float
    target: float
    burn_fast: float
    burn_slow: float
    job_id: str | None = None
    message: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"tenant": self.tenant, "objective": self.objective,
                "metric": self.metric, "severity": self.severity,
                "t": self.t, "value": self.value, "target": self.target,
                "burn_fast": self.burn_fast, "burn_slow": self.burn_slow,
                "job_id": self.job_id, "message": self.message}


class BurnRateMonitor:
    """Rolling per-tenant burn-rate evaluation over SLO objectives.

    Feed it observations with :meth:`observe`; it keeps one
    ``(t, value)`` window per (tenant, objective), evaluates both burn
    windows on every observation, and fires a structured :class:`Alert`
    on the healthy->unhealthy transition only — a sustained violation is
    one alert, and the objective must recover (both windows below their
    thresholds) before it can page again. Alerts are appended to
    :attr:`alerts`, published on ``bus`` (kind ``alert``) when one is
    given, and mirrored as ``slo.burn`` tracer instants.
    """

    def __init__(self, objectives: tuple[SloObjective, ...] | None = None,
                 bus: TelemetryBus | None = None,
                 tracer: Any = None) -> None:
        self.objectives = tuple(objectives if objectives is not None
                                else default_objectives())
        self.bus = bus
        self.tracer = tracer
        self.alerts: list[Alert] = []
        self._samples: dict[tuple[str, str], deque[tuple[float, bool]]] = {}
        self._firing: dict[tuple[str, str], Alert] = {}
        self._by_metric: dict[str, list[SloObjective]] = {}
        for obj in self.objectives:
            self._by_metric.setdefault(obj.metric, []).append(obj)

    # -- feeding -------------------------------------------------------------

    def observe(self, tenant: str, metric: str, t: float, value: float,
                job_id: str | None = None) -> list[Alert]:
        """Record one observation; returns any alerts it fired."""
        fired: list[Alert] = []
        for obj in self._by_metric.get(metric, ()):
            key = (tenant, obj.name)
            window = self._samples.setdefault(key, deque())
            window.append((t, value > obj.target))
            while window and window[0][0] < t - obj.slow_window:
                window.popleft()
            burn_fast = self._burn(window, t - obj.fast_window, obj.budget)
            burn_slow = self._burn(window, t - obj.slow_window, obj.budget)
            unhealthy = (burn_fast >= obj.fast_burn
                         and burn_slow >= obj.slow_burn)
            if unhealthy and key not in self._firing:
                alert = Alert(
                    tenant=tenant, objective=obj.name, metric=metric,
                    severity=obj.severity, t=t, value=value,
                    target=obj.target, burn_fast=burn_fast,
                    burn_slow=burn_slow, job_id=job_id,
                    message=(f"{tenant}: {obj.name} burning at "
                             f"{burn_fast:.1f}x/{burn_slow:.1f}x budget "
                             f"({metric}={value:.3f} > {obj.target:.3f})"))
                self._firing[key] = alert
                self.alerts.append(alert)
                fired.append(alert)
                self._emit(alert)
            elif not unhealthy and key in self._firing:
                del self._firing[key]
        return fired

    @staticmethod
    def _burn(window: deque[tuple[float, bool]], cutoff: float,
              budget: float) -> float:
        total = bad = 0
        for t, is_bad in window:
            if t >= cutoff:
                total += 1
                bad += is_bad
        return (bad / total) / budget if total else 0.0

    def _emit(self, alert: Alert) -> None:
        bus = self.bus
        tracer = self.tracer
        if bus is None and tracer is not None:
            bus = getattr(tracer, "bus", None)
        if bus is not None:
            bus.publish(KIND_ALERT, alert.objective, t=alert.t, lane="slo",
                        tenant=alert.tenant, job_id=alert.job_id,
                        **{k: v for k, v in alert.to_dict().items()
                           if k not in ("tenant", "job_id", "objective", "t")})
        if tracer is not None and tracer.enabled:
            tracer.instant("slo.burn", lane="slo", tenant=alert.tenant,
                           job=alert.job_id, objective=alert.objective,
                           value=alert.value, target=alert.target,
                           burn_fast=alert.burn_fast)

    # -- querying ------------------------------------------------------------

    def active(self, tenant: str | None = None) -> list[Alert]:
        """Alerts currently firing (unhealthy and not yet recovered)."""
        alerts = [a for key, a in sorted(self._firing.items())]
        if tenant is not None:
            alerts = [a for a in alerts if a.tenant == tenant]
        return alerts

    def alerts_for(self, tenant: str) -> list[Alert]:
        return [a for a in self.alerts if a.tenant == tenant]


# ---------------------------------------------------------------------------
# The `repro top` frame renderer
# ---------------------------------------------------------------------------


def render_top(service: "CampaignService", bus: TelemetryBus | None = None,
               monitor: BurnRateMonitor | None = None,
               ticker: int = 5) -> str:
    """One refreshing text frame of a draining campaign service.

    Reads live state only — the service engine is not advanced. Shows
    per-tenant queue depth / running / done / cache hit rate / active
    alerts, the worker pool and bus occupancy, shard balance when any
    job ran sharded, and a ticker of the most recent controller
    decisions and alerts.
    """
    from repro.service.queue import JobState

    monitor = monitor if monitor is not None else service.monitor
    tenants = sorted({j.tenant for j in service.jobs})
    lines: list[str] = []
    pool = service.pool
    lines.append(
        f"repro top — t={service.engine.now:.3f}s service time, "
        f"{len(service.jobs)} job(s), workers "
        f"{pool.n_workers - pool.idle_count()}/{pool.n_workers} busy")
    if bus is not None:
        lines.append(
            f"bus: {bus.published} events published, {len(bus.ring)} "
            f"retained, {bus.dropped_total} dropped "
            f"({len(bus.subscribers)} subscriber(s))")
        if bus.dropped_by_kind:
            by_kind = ", ".join(f"{kind}={n}" for kind, n in
                                sorted(bus.dropped_by_kind.items()))
            lines.append(f"bus drops by kind: {by_kind}")
    header = (f"{'tenant':<12} {'queued':>6} {'run':>4} {'done':>4} "
              f"{'fail':>4} {'held':>4} {'hit%':>5} {'maxwait':>8} "
              f"{'alerts':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for tenant in tenants:
        jobs = [j for j in service.jobs if j.tenant == tenant]
        done = [j for j in jobs if j.state is JobState.DONE]
        running = sum(j.state is JobState.RUNNING for j in jobs)
        failed = sum(j.state is JobState.FAILED for j in jobs)
        held = sum(j.held for j in jobs)
        hits = sum(j.cache_hit for j in done)
        hit_pct = f"{100.0 * hits / len(done):.0f}" if done else "-"
        max_wait = max((j.queue_wait or 0.0 for j in done), default=0.0)
        active = len(monitor.active(tenant)) if monitor is not None else 0
        lines.append(
            f"{tenant:<12} {service.queue.pending_for(tenant):>6} "
            f"{running:>4} {len(done):>4} {failed:>4} {held:>4} "
            f"{hit_pct:>5} {max_wait:>8.2f} {active:>6}")
    balances = [j.result.shard_balance for j in service.jobs
                if j.result is not None and j.result.shard_balance is not None]
    if balances:
        from repro.service.shards import ShardBalanceReport
        bal = ShardBalanceReport.merge(balances)
        lines.append(f"shards: {bal.n_shards} shard(s), imbalance "
                     f"{bal.imbalance('tasks'):.2f}x tasks / "
                     f"{bal.imbalance('bytes'):.2f}x bytes")
    if monitor is not None and monitor.active():
        lines.append("active alerts:")
        for alert in monitor.active():
            lines.append(f"  [{alert.severity}] {alert.message}")
    if bus is not None and ticker > 0:
        recent = [e for e in bus.ring
                  if e.kind in (KIND_DECISION, KIND_ALERT)][-ticker:]
        if recent:
            lines.append("ticker (decisions & alerts):")
            for e in recent:
                who = e.tenant or "-"
                lines.append(f"  #{e.seq} t={e.t:.2f} {e.kind}: {e.name} "
                             f"[{who}] {e.data.get('message', '') or ''}"
                             .rstrip())
    return "\n".join(lines)
