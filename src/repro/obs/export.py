"""Trace exporters: Chrome trace-event JSON, JSON lines, text summaries.

The Chrome export is Perfetto-loadable (``ui.perfetto.dev`` → "Open trace
file"). Lanes map to ``pid``s; within a lane, spans are packed onto the
fewest sub-rows (``tid``s) such that each row's spans are sequential or
properly nested — so the emitted ``B``/``E`` pairs always balance per
``(pid, tid)``, even when a lane carries overlapping spans (streaming
prefetch). Timestamps are the tracer's trace clock (DES simulated time in
an engine-attached run) in microseconds; pass ``clock="wall"`` to export
the wall-clock timeline of a functional run instead.

:func:`validate_chrome_trace` is the structural checker the CLI and tests
use: every event carries ``name/ph/ts/pid/tid`` and ``B``/``E`` pairs
balance per lane row.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterator
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord, Trace
from repro.util.tables import TextTable

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "to_jsonl_lines",
    "write_jsonl",
    "lane_summary",
]

_US = 1e6  # chrome trace timestamps are microseconds


def _json_safe(tags: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in tags.items():
        if isinstance(value, (str, int, bool)) or value is None:
            out[key] = value
        elif isinstance(value, float):
            out[key] = value if math.isfinite(value) else repr(value)
        else:
            out[key] = repr(value)
    return out


def _span_times(span: SpanRecord, clock: str) -> tuple[float, float]:
    if clock == "wall":
        return span.wall_start, span.wall_end
    return span.t_start, span.t_end


def _assign_rows(spans: list[SpanRecord], clock: str
                 ) -> list[list[SpanRecord]]:
    """Pack a lane's spans onto rows where spans are disjoint or properly
    nested — the invariant that makes ``B``/``E`` emission balance."""
    ordered = sorted(spans, key=lambda s: (_span_times(s, clock)[0],
                                           -_span_times(s, clock)[1],
                                           s.span_id))
    rows: list[list[SpanRecord]] = []
    open_ends: list[list[float]] = []  # per row, stack of open end times
    for span in ordered:
        start, end = _span_times(span, clock)
        placed = False
        for row, ends in zip(rows, open_ends):
            while ends and ends[-1] <= start:
                ends.pop()
            if not ends or ends[-1] >= end:
                row.append(span)
                ends.append(end)
                placed = True
                break
        if not placed:
            rows.append([span])
            open_ends.append([end])
    return rows


def _row_events(row: list[SpanRecord], pid: int, tid: int, clock: str
                ) -> list[dict[str, Any]]:
    """Emit balanced B/E events for one row (spans disjoint or nested)."""
    events: list[dict[str, Any]] = []
    stack: list[tuple[float, SpanRecord]] = []

    def _close(until: float) -> None:
        while stack and stack[-1][0] <= until:
            end, span = stack.pop()
            events.append({"name": span.name, "ph": "E", "ts": end * _US,
                           "pid": pid, "tid": tid})

    for span in row:
        start, end = _span_times(span, clock)
        _close(start)
        event: dict[str, Any] = {"name": span.name, "ph": "B",
                                 "ts": start * _US, "pid": pid, "tid": tid}
        args = _json_safe(span.tags)
        if span.category:
            event["cat"] = span.category
        if args:
            event["args"] = args
        events.append(event)
        stack.append((end, span))
    _close(math.inf)
    return events


def to_chrome_trace(trace: Trace, metrics: MetricsRegistry | None = None,
                    clock: str = "trace") -> dict[str, Any]:
    """Convert a trace (and optional counter series) to a Chrome trace doc."""
    if clock not in ("trace", "wall"):
        raise ValueError(f"clock must be 'trace' or 'wall', got {clock!r}")
    lanes = trace.lanes()
    pid_of = {lane: i + 1 for i, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = []
    for lane in lanes:
        pid = pid_of[lane]
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": 0, "args": {"name": lane}})

    spans_by_lane: dict[str, list[SpanRecord]] = {}
    for span in trace.closed_spans():
        spans_by_lane.setdefault(span.lane, []).append(span)
    for lane, spans in spans_by_lane.items():
        pid = pid_of[lane]
        for tid, row in enumerate(_assign_rows(spans, clock)):
            events.extend(_row_events(row, pid, tid, clock))

    for inst in trace.instants:
        event: dict[str, Any] = {"name": inst.name, "ph": "i",
                                 "ts": (inst.wall_t if clock == "wall"
                                        else inst.t) * _US,
                                 "pid": pid_of[inst.lane], "tid": 0,
                                 "s": "t"}
        args = _json_safe(inst.tags)
        if args:
            event["args"] = args
        events.append(event)

    if metrics is not None:
        metrics_pid = len(lanes) + 1
        emitted_meta = False
        for name, counter in sorted(metrics.counters.items()):
            for t, value in counter.series or []:
                events.append({"name": name, "ph": "C", "ts": t * _US,
                               "pid": metrics_pid, "tid": 0,
                               "args": {"value": value}})
                emitted_meta = True
        for name, gauge in sorted(metrics.gauges.items()):
            for t, value in gauge.series or []:
                events.append({"name": name, "ph": "C", "ts": t * _US,
                               "pid": metrics_pid, "tid": 0,
                               "args": {"value": value}})
                emitted_meta = True
        if emitted_meta:
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": metrics_pid, "tid": 0,
                           "args": {"name": "metrics"}})

    events.sort(key=lambda e: e["ts"])  # stable: preserves B/E order at ties
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trace: Trace,
                       metrics: MetricsRegistry | None = None,
                       clock: str = "trace") -> dict[str, Any]:
    doc = to_chrome_trace(trace, metrics, clock)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid).

    Checks: the document shape, that every event carries
    ``name/ph/ts/pid/tid``, and that ``B``/``E`` pairs balance (LIFO, name
    matched) per ``(pid, tid)`` lane row.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no 'traceEvents' list"]
    stacks: dict[tuple[Any, Any], list[str]] = {}
    for i, event in enumerate(events):
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in event]
        if missing:
            problems.append(f"event {i} missing keys {missing}: {event!r}")
            continue
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks.setdefault(key, []).append(event["name"])
        elif event["ph"] == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(f"event {i}: E {event['name']!r} on "
                                f"pid/tid {key} with no open B")
            elif stack[-1] != event["name"]:
                problems.append(f"event {i}: E {event['name']!r} closes "
                                f"B {stack[-1]!r} on pid/tid {key}")
                stack.pop()
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(f"pid/tid {key} ends with unclosed spans {stack}")
    return problems


def to_jsonl_lines(trace: Trace, metrics: MetricsRegistry | None = None
                   ) -> Iterator[str]:
    """The full event record as JSON lines (one object per line)."""
    for span in trace.spans:
        yield json.dumps({
            "type": "span", "name": span.name, "lane": span.lane,
            "span_id": span.span_id, "parent_id": span.parent_id,
            "category": span.category,
            "t_start": span.t_start,
            "t_end": span.t_end if span.closed else None,
            "wall_start": span.wall_start,
            "wall_end": span.wall_end if span.closed else None,
            "tags": _json_safe(span.tags),
        })
    for inst in trace.instants:
        yield json.dumps({
            "type": "instant", "name": inst.name, "lane": inst.lane,
            "t": inst.t, "wall_t": inst.wall_t,
            "tags": _json_safe(inst.tags),
        })
    if metrics is not None:
        yield json.dumps({"type": "metrics", **metrics.snapshot()})


def write_jsonl(path: str, trace: Trace,
                metrics: MetricsRegistry | None = None) -> int:
    """Write the JSON-lines event log; returns the number of lines."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl_lines(trace, metrics):
            fh.write(line + "\n")
            n += 1
    return n


def lane_summary(trace: Trace, clock: str = "trace") -> str:
    """Per-lane span counts and busy time as an aligned text table."""
    if clock not in ("trace", "wall"):
        raise ValueError(f"clock must be 'trace' or 'wall', got {clock!r}")
    table = TextTable(["lane", "spans", "instants", "busy (s)", "first",
                       "last"], title="trace lanes")
    instants_by_lane: dict[str, int] = {}
    for inst in trace.instants:
        instants_by_lane[inst.lane] = instants_by_lane.get(inst.lane, 0) + 1
    spans_by_lane: dict[str, list[SpanRecord]] = {}
    for span in trace.closed_spans():
        spans_by_lane.setdefault(span.lane, []).append(span)
    for lane in trace.lanes():
        spans = spans_by_lane.get(lane, [])
        times = [_span_times(s, clock) for s in spans]
        busy = sum(e - s for s, e in times)
        table.add_row([
            lane, len(spans), instants_by_lane.get(lane, 0), round(busy, 4),
            round(min((s for s, _ in times), default=0.0), 4),
            round(max((e for _, e in times), default=0.0), 4),
        ])
    return table.render()
