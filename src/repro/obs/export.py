"""Trace exporters: Chrome trace-event JSON, JSON lines, text summaries.

The Chrome export is Perfetto-loadable (``ui.perfetto.dev`` → "Open trace
file"). Lanes map to ``pid``s; within a lane, spans are packed onto the
fewest sub-rows (``tid``s) such that each row's spans are sequential or
properly nested — so the emitted ``B``/``E`` pairs always balance per
``(pid, tid)``, even when a lane carries overlapping spans (streaming
prefetch). Timestamps are the tracer's trace clock (DES simulated time in
an engine-attached run) in microseconds; pass ``clock="wall"`` to export
the wall-clock timeline of a functional run instead.

:func:`validate_chrome_trace` is the structural checker the CLI and tests
use: every event carries ``name/ph/ts/pid/tid``, ``B``/``E`` pairs
balance per lane row, and flow events (``s``/``t``/``f``) pair up per
``id`` and bind inside a slice on their row.

Recorded flows (:class:`~repro.obs.flow.FlowContext`) export as Chrome
flow events — Perfetto draws them as arrows from the producer span
through every intermediate hand-off span to the consumer — and as
full-fidelity ``{"type": "flow"}`` JSON lines. :func:`load_trace` /
:func:`load_trace_jsonl` reconstruct a :class:`Trace` from either file
format so two runs can be diffed offline (``repro trace --diff``).
"""

from __future__ import annotations

import itertools
import json
import math
from collections.abc import Iterator
from typing import Any

from repro.obs.flow import FlowContext, FlowHop
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import InstantRecord, SpanRecord, Trace
from repro.util.tables import TextTable

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "to_jsonl_lines",
    "write_jsonl",
    "load_trace",
    "load_trace_jsonl",
    "lane_summary",
]

_US = 1e6  # chrome trace timestamps are microseconds


def _json_safe(tags: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in tags.items():
        if isinstance(value, (str, int, bool)) or value is None:
            out[key] = value
        elif isinstance(value, float):
            out[key] = value if math.isfinite(value) else repr(value)
        else:
            out[key] = repr(value)
    return out


def _span_times(span: SpanRecord, clock: str) -> tuple[float, float]:
    if clock == "wall":
        return span.wall_start, span.wall_end
    return span.t_start, span.t_end


def _assign_rows(spans: list[SpanRecord], clock: str
                 ) -> list[list[SpanRecord]]:
    """Pack a lane's spans onto rows where spans are disjoint or properly
    nested — the invariant that makes ``B``/``E`` emission balance."""
    ordered = sorted(spans, key=lambda s: (_span_times(s, clock)[0],
                                           -_span_times(s, clock)[1],
                                           s.span_id))
    rows: list[list[SpanRecord]] = []
    open_ends: list[list[float]] = []  # per row, stack of open end times
    for span in ordered:
        start, end = _span_times(span, clock)
        placed = False
        for row, ends in zip(rows, open_ends):
            while ends and ends[-1] <= start:
                ends.pop()
            if not ends or ends[-1] >= end:
                row.append(span)
                ends.append(end)
                placed = True
                break
        if not placed:
            rows.append([span])
            open_ends.append([end])
    return rows


def _row_events(row: list[SpanRecord], pid: int, tid: int, clock: str
                ) -> list[dict[str, Any]]:
    """Emit balanced B/E events for one row (spans disjoint or nested)."""
    events: list[dict[str, Any]] = []
    stack: list[tuple[float, SpanRecord]] = []

    def _close(until: float) -> None:
        while stack and stack[-1][0] <= until:
            end, span = stack.pop()
            events.append({"name": span.name, "ph": "E", "ts": end * _US,
                           "pid": pid, "tid": tid})

    for span in row:
        start, end = _span_times(span, clock)
        _close(start)
        event: dict[str, Any] = {"name": span.name, "ph": "B",
                                 "ts": start * _US, "pid": pid, "tid": tid}
        args = _json_safe(span.tags)
        if span.category:
            event["cat"] = span.category
        if args:
            event["args"] = args
        events.append(event)
        stack.append((end, span))
    _close(math.inf)
    return events


def _flow_events(trace: Trace, row_of: dict[int, tuple[int, int]],
                 clock: str) -> list[dict[str, Any]]:
    """Chrome flow events (``ph`` s/t/f) for every drawable flow.

    The arrow starts inside the producer span (``s`` at its end), steps
    through each intermediate chain span (``t`` at its start), and ends
    at the consumer span's start (``f`` with ``bp: "e"`` so viewers bind
    it to the enclosing slice). A flow needs at least two chain spans on
    exported rows to draw; shorter or unclosed flows are skipped.
    """
    events: list[dict[str, Any]] = []
    span_of = trace.span_map()
    for flow in trace.flows:
        if not flow.closed:
            continue
        chain = [span_of[sid] for sid in flow.span_ids()
                 if sid in span_of and sid in row_of]
        if len(chain) < 2:
            continue
        name = f"flow:{flow.kind}"
        for i, span in enumerate(chain):
            start, end = _span_times(span, clock)
            pid, tid = row_of[span.span_id]
            event: dict[str, Any] = {
                "name": name, "cat": "flow", "id": flow.flow_id,
                "pid": pid, "tid": tid,
            }
            if i == 0:
                event["ph"] = "s"
                event["ts"] = end * _US
                args = _json_safe(flow.tags)
                if args:
                    event["args"] = args
            elif i == len(chain) - 1:
                event["ph"] = "f"
                event["bp"] = "e"
                event["ts"] = start * _US
            else:
                event["ph"] = "t"
                event["ts"] = start * _US
            events.append(event)
    return events


def to_chrome_trace(trace: Trace, metrics: MetricsRegistry | None = None,
                    clock: str = "trace") -> dict[str, Any]:
    """Convert a trace (and optional counter series) to a Chrome trace doc."""
    if clock not in ("trace", "wall"):
        raise ValueError(f"clock must be 'trace' or 'wall', got {clock!r}")
    lanes = trace.lanes()
    pid_of = {lane: i + 1 for i, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = []
    for lane in lanes:
        pid = pid_of[lane]
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": 0, "args": {"name": lane}})

    spans_by_lane: dict[str, list[SpanRecord]] = {}
    for span in trace.closed_spans():
        spans_by_lane.setdefault(span.lane, []).append(span)
    row_of: dict[int, tuple[int, int]] = {}
    for lane, spans in spans_by_lane.items():
        pid = pid_of[lane]
        for tid, row in enumerate(_assign_rows(spans, clock)):
            for span in row:
                row_of[span.span_id] = (pid, tid)
            events.extend(_row_events(row, pid, tid, clock))

    events.extend(_flow_events(trace, row_of, clock))

    for inst in trace.instants:
        event: dict[str, Any] = {"name": inst.name, "ph": "i",
                                 "ts": (inst.wall_t if clock == "wall"
                                        else inst.t) * _US,
                                 "pid": pid_of[inst.lane], "tid": 0,
                                 "s": "t"}
        args = _json_safe(inst.tags)
        if args:
            event["args"] = args
        events.append(event)

    if metrics is not None:
        metrics_pid = len(lanes) + 1
        emitted_meta = False
        for name, counter in sorted(metrics.counters.items()):
            for t, value in counter.series or []:
                events.append({"name": name, "ph": "C", "ts": t * _US,
                               "pid": metrics_pid, "tid": 0,
                               "args": {"value": value}})
                emitted_meta = True
        for name, gauge in sorted(metrics.gauges.items()):
            for t, value in gauge.series or []:
                events.append({"name": name, "ph": "C", "ts": t * _US,
                               "pid": metrics_pid, "tid": 0,
                               "args": {"value": value}})
                emitted_meta = True
        if emitted_meta:
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": metrics_pid, "tid": 0,
                           "args": {"name": "metrics"}})

    events.sort(key=lambda e: e["ts"])  # stable: preserves B/E order at ties
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trace: Trace,
                       metrics: MetricsRegistry | None = None,
                       clock: str = "trace") -> dict[str, Any]:
    doc = to_chrome_trace(trace, metrics, clock)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid).

    Checks: the document shape, that every event carries
    ``name/ph/ts/pid/tid``, that ``B``/``E`` pairs balance (LIFO, name
    matched) per ``(pid, tid)`` lane row, and that flow events
    (``s``/``t``/``f``) carry an ``id``, pair a start with a finish in
    time order, and bind inside some slice on their row.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no 'traceEvents' list"]
    stacks: dict[tuple[Any, Any], list[tuple[str, float]]] = {}
    intervals: dict[tuple[Any, Any], list[tuple[float, float]]] = {}
    flow_events: list[tuple[int, dict[str, Any]]] = []
    for i, event in enumerate(events):
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in event]
        if missing:
            problems.append(f"event {i} missing keys {missing}: {event!r}")
            continue
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks.setdefault(key, []).append((event["name"], event["ts"]))
        elif event["ph"] == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(f"event {i}: E {event['name']!r} on "
                                f"pid/tid {key} with no open B")
                continue
            name, start_ts = stack[-1]
            if name != event["name"]:
                problems.append(f"event {i}: E {event['name']!r} closes "
                                f"B {name!r} on pid/tid {key}")
            stack.pop()
            intervals.setdefault(key, []).append((start_ts, event["ts"]))
        elif event["ph"] in ("s", "t", "f"):
            flow_events.append((i, event))
    for key, stack in stacks.items():
        if stack:
            names = [name for name, _ in stack]
            problems.append(f"pid/tid {key} ends with unclosed spans {names}")

    flows: dict[Any, dict[str, float]] = {}
    for i, event in flow_events:
        if "id" not in event:
            problems.append(f"event {i}: flow event {event['name']!r} "
                            f"({event['ph']}) has no 'id'")
            continue
        record = flows.setdefault(event["id"], {})
        ph, ts = event["ph"], event["ts"]
        if ph in record and ph in ("s", "f"):
            problems.append(f"event {i}: flow id {event['id']} has a "
                            f"duplicate {ph!r} event")
        record[ph] = max(ts, record.get(ph, ts)) if ph == "t" else ts
        key = (event["pid"], event["tid"])
        spans = intervals.get(key, [])
        if not any(start <= ts <= end for start, end in spans):
            problems.append(f"event {i}: flow event {event['name']!r} "
                            f"({ph}) at ts {ts} binds to no slice on "
                            f"pid/tid {key}")
    for flow_id, record in flows.items():
        if "s" not in record:
            problems.append(f"flow id {flow_id} has no start (s) event")
        if "f" not in record:
            problems.append(f"flow id {flow_id} has no finish (f) event")
        if "s" in record and "f" in record and record["f"] < record["s"]:
            problems.append(f"flow id {flow_id} finishes (ts {record['f']})"
                            f" before it starts (ts {record['s']})")
    return problems


def to_jsonl_lines(trace: Trace, metrics: MetricsRegistry | None = None
                   ) -> Iterator[str]:
    """The full event record as JSON lines (one object per line)."""
    for span in trace.spans:
        yield json.dumps({
            "type": "span", "name": span.name, "lane": span.lane,
            "span_id": span.span_id, "parent_id": span.parent_id,
            "category": span.category,
            "t_start": span.t_start,
            "t_end": span.t_end if span.closed else None,
            "wall_start": span.wall_start,
            "wall_end": span.wall_end if span.closed else None,
            "tags": _json_safe(span.tags),
        })
    for inst in trace.instants:
        yield json.dumps({
            "type": "instant", "name": inst.name, "lane": inst.lane,
            "t": inst.t, "wall_t": inst.wall_t,
            "tags": _json_safe(inst.tags),
        })
    for flow in trace.flows:
        yield json.dumps({
            "type": "flow", "flow_id": flow.flow_id, "kind": flow.kind,
            "t_begin": flow.t_begin,
            "src_span_id": flow.src_span_id,
            "dst_span_id": flow.dst_span_id,
            "tags": _json_safe(flow.tags),
            "hops": [{"t": hop.t, "kind": hop.kind, "lane": hop.lane,
                      "span_id": hop.span_id,
                      "tags": _json_safe(hop.tags)}
                     for hop in flow.hops],
        })
    if metrics is not None:
        yield json.dumps({"type": "metrics", **metrics.snapshot()})


def write_jsonl(path: str, trace: Trace,
                metrics: MetricsRegistry | None = None) -> int:
    """Write the JSON-lines event log; returns the number of lines."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl_lines(trace, metrics):
            fh.write(line + "\n")
            n += 1
    return n


def load_trace_jsonl(path: str) -> Trace:
    """Reconstruct a :class:`Trace` from a JSON-lines export.

    Full fidelity: spans (with ids and tags), instants, and flows with
    their complete hop chains — everything :func:`repro.obs.blame.blame`
    and ``repro trace --diff`` need. Metrics lines are skipped.
    """
    trace = Trace()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = rec.get("type")
            if kind == "span":
                trace.spans.append(SpanRecord(
                    name=rec["name"], lane=rec["lane"],
                    span_id=rec["span_id"], parent_id=rec.get("parent_id"),
                    t_start=rec["t_start"],
                    wall_start=rec.get("wall_start", rec["t_start"]),
                    category=rec.get("category"),
                    tags=rec.get("tags") or {},
                    t_end=(rec["t_end"] if rec.get("t_end") is not None
                           else math.nan),
                    wall_end=(rec["wall_end"]
                              if rec.get("wall_end") is not None
                              else math.nan),
                ))
            elif kind == "instant":
                trace.instants.append(InstantRecord(
                    name=rec["name"], lane=rec["lane"], t=rec["t"],
                    wall_t=rec.get("wall_t", rec["t"]),
                    tags=rec.get("tags") or {}))
            elif kind == "flow":
                trace.flows.append(FlowContext(
                    flow_id=rec["flow_id"], kind=rec["kind"],
                    t_begin=rec["t_begin"],
                    src_span_id=rec.get("src_span_id"),
                    dst_span_id=rec.get("dst_span_id"),
                    tags=rec.get("tags") or {},
                    hops=[FlowHop(t=h["t"], kind=h["kind"],
                                  lane=h["lane"],
                                  span_id=h.get("span_id"),
                                  tags=h.get("tags") or {})
                          for h in rec.get("hops", [])]))
    trace.version = len(trace.spans)
    return trace


def load_trace(path: str) -> Trace:
    """Load a trace from either export format, sniffing the content.

    A Chrome trace document (``{"traceEvents": [...]}``) reconstructs
    spans from balanced ``B``/``E`` pairs and instants from ``i`` events
    (lane names from ``process_name`` metadata; flows are not
    reconstructed — hop detail is only in the JSONL format). Anything
    else is parsed as JSON lines via :func:`load_trace_jsonl`.
    """
    with open(path, encoding="utf-8") as fh:
        head = fh.read(4096).lstrip()
    if '"traceEvents"' not in head:
        # JSONL lines carry a "type" key, never a traceEvents wrapper.
        return load_trace_jsonl(path)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: neither a Chrome trace nor JSON lines")
    lane_of_pid: dict[Any, str] = {}
    for event in events:
        if (event.get("ph") == "M" and event.get("name") == "process_name"):
            lane_of_pid[event["pid"]] = event.get("args", {}).get(
                "name", f"pid-{event['pid']}")
    trace = Trace()
    next_id = itertools.count(1)
    stacks: dict[tuple[Any, Any], list[SpanRecord]] = {}
    for event in sorted((e for e in events if "ts" in e),
                        key=lambda e: e["ts"]):
        ph = event.get("ph")
        pid = event.get("pid")
        lane = lane_of_pid.get(pid, f"pid-{pid}")
        if lane == "metrics":
            continue
        t = event["ts"] / _US
        if ph == "B":
            key = (pid, event.get("tid"))
            stack = stacks.setdefault(key, [])
            span = SpanRecord(
                name=event["name"], lane=lane, span_id=next(next_id),
                parent_id=stack[-1].span_id if stack else None,
                t_start=t, wall_start=t,
                category=event.get("cat"),
                tags=event.get("args") or {})
            trace.spans.append(span)
            stack.append(span)
        elif ph == "E":
            stack = stacks.get((pid, event.get("tid")))
            if stack:
                span = stack.pop()
                span.t_end = t
                span.wall_end = t
        elif ph == "i":
            trace.instants.append(InstantRecord(
                name=event["name"], lane=lane, t=t, wall_t=t,
                tags=event.get("args") or {}))
    trace.version = len(trace.spans)
    return trace


def lane_summary(trace: Trace, clock: str = "trace") -> str:
    """Per-lane span counts and busy time as an aligned text table."""
    if clock not in ("trace", "wall"):
        raise ValueError(f"clock must be 'trace' or 'wall', got {clock!r}")
    table = TextTable(["lane", "spans", "instants", "busy (s)", "first",
                       "last"], title="trace lanes")
    instants_by_lane: dict[str, int] = {}
    for inst in trace.instants:
        instants_by_lane[inst.lane] = instants_by_lane.get(inst.lane, 0) + 1
    spans_by_lane: dict[str, list[SpanRecord]] = {}
    for span in trace.closed_spans():
        spans_by_lane.setdefault(span.lane, []).append(span)
    for lane in trace.lanes():
        spans = spans_by_lane.get(lane, [])
        times = [_span_times(s, clock) for s in spans]
        busy = sum(e - s for s, e in times)
        table.add_row([
            lane, len(spans), instants_by_lane.get(lane, 0), round(busy, 4),
            round(min((s for s, _ in times), default=0.0), 4),
            round(max((e for _, e in times), default=0.0), 4),
        ])
    return table.render()
