"""repro.obs — unified tracing, metrics, and critical-path observability.

The observability subsystem for the hybrid pipeline:

* :class:`Tracer` — span/instant/counter recording against both the DES
  simulated clock and the wall clock, with per-actor lanes and nesting;
  disabled by default via the :data:`NULL_TRACER` singleton (near-zero
  overhead at instrument sites).
* :class:`MetricsRegistry` — counters, gauges, histograms (bytes moved,
  SMSG/BTE picks, queue depths, bucket occupancy, retries).
* Exporters — Chrome trace-event JSON (Perfetto-loadable), JSON-lines
  event logs, and text summaries.
* Analysis — :func:`critical_path` extraction over the span DAG and
  :func:`reconcile_totals` against :mod:`repro.core.breakdown` figures.
* Causal flows — :class:`FlowContext` hand-off edges recorded through
  every pipeline boundary (submit → scheduler → bucket → pull →
  in-transit), driving the exact :func:`causal_critical_path`, the
  :func:`blame` attribution (five buckets summing exactly to the
  makespan), and :func:`diff_traces` run-vs-run comparison
  (``python -m repro blame``, ``python -m repro trace --diff``).
* Cross-run performance — :class:`RunStore` append-only run records,
  :func:`compare_record` regression gating against a rolling
  :class:`Baseline`, :class:`ProbeSampler` live DES-clock probes with SLO
  rules, and :func:`write_dashboard` self-contained HTML reports
  (``python -m repro perf record|compare|report``).
* Live plane — :class:`TelemetryBus` streaming spans/probes/alerts/job
  events in DES time with per-tenant attribution, :class:`BurnRateMonitor`
  rolling SLO burn-rate alerting, and the ``repro top`` live service
  view (``python -m repro top``).
* Capacity plane — :class:`CapacityLedger` byte-accurate staging-memory
  and NIC-bandwidth ledgers with per-tenant/shard/source attribution,
  leak detection, and headroom reconciliation against the analytic
  ``staging_memory_needed`` bound (``python -m repro capacity``).

Typical use::

    from repro.obs import tracing, write_chrome_trace, critical_path

    with tracing() as tracer:
        fw = HybridFramework(case, decomp)   # construct *inside* the context
        fw.run(10)
    write_chrome_trace("trace.json", tracer.trace, tracer.metrics)
    print(critical_path(tracer.trace).table())

Or drive the packaged campaign: ``python -m repro trace``.
"""

from repro.obs.analysis import (
    CriticalPath,
    PathReconcile,
    ReconcileRow,
    causal_critical_path,
    critical_path,
    reconcile_paths,
    reconcile_table,
    reconcile_totals,
)
from repro.obs.blame import (
    BlameBreakdown,
    BlameReport,
    KernelUsage,
    StepBlame,
    TraceDiff,
    blame,
    diff_traces,
    flow_edge_totals,
    kernel_table,
    top_kernels,
)
from repro.obs.capacity import (
    CapacityLedger,
    CapacityReport,
    LedgerEntry,
    TransferEntry,
    capacity_objectives,
    run_capacity_scenario,
)
from repro.obs.export import (
    lane_summary,
    load_trace,
    load_trace_jsonl,
    to_chrome_trace,
    to_jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flow import (
    BLAME_BUCKETS,
    EDGE_KINDS,
    FlowContext,
    FlowHop,
)
from repro.obs.live import (
    Alert,
    BurnRateMonitor,
    BusEvent,
    BusSubscriber,
    SloObjective,
    TelemetryBus,
    default_objectives,
    event_to_json,
    render_top,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.perf import (
    DEFAULT_POLICIES,
    Baseline,
    MetricPolicy,
    MetricVerdict,
    RegressionReport,
    RunRecord,
    RunStore,
    collect_run_record,
    compare_record,
    machine_fingerprint,
)
from repro.obs.probes import (
    ProbeSampler,
    SloAlert,
    SloRule,
    SummarySlo,
    default_slos,
    insitu_share_slo,
    standard_probes,
)
from repro.obs.report import (
    render_dashboard,
    render_trace_diff,
    write_dashboard,
    write_trace_diff,
)
from repro.obs.tracer import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Trace,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "CriticalPath",
    "PathReconcile",
    "ReconcileRow",
    "causal_critical_path",
    "critical_path",
    "reconcile_paths",
    "reconcile_table",
    "reconcile_totals",
    "BlameBreakdown",
    "BlameReport",
    "KernelUsage",
    "StepBlame",
    "TraceDiff",
    "blame",
    "diff_traces",
    "flow_edge_totals",
    "kernel_table",
    "top_kernels",
    "CapacityLedger",
    "CapacityReport",
    "LedgerEntry",
    "TransferEntry",
    "capacity_objectives",
    "run_capacity_scenario",
    "BLAME_BUCKETS",
    "EDGE_KINDS",
    "FlowContext",
    "FlowHop",
    "load_trace",
    "load_trace_jsonl",
    "lane_summary",
    "to_chrome_trace",
    "to_jsonl_lines",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "Alert",
    "BurnRateMonitor",
    "BusEvent",
    "BusSubscriber",
    "SloObjective",
    "TelemetryBus",
    "default_objectives",
    "event_to_json",
    "render_top",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_POLICIES",
    "Baseline",
    "MetricPolicy",
    "MetricVerdict",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "collect_run_record",
    "compare_record",
    "machine_fingerprint",
    "ProbeSampler",
    "SloAlert",
    "SloRule",
    "SummarySlo",
    "default_slos",
    "insitu_share_slo",
    "standard_probes",
    "render_dashboard",
    "render_trace_diff",
    "write_dashboard",
    "write_trace_diff",
    "NULL_TRACER",
    "InstantRecord",
    "NullTracer",
    "SpanRecord",
    "Trace",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "tracing",
]
