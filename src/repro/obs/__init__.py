"""repro.obs — unified tracing, metrics, and critical-path observability.

The observability subsystem for the hybrid pipeline:

* :class:`Tracer` — span/instant/counter recording against both the DES
  simulated clock and the wall clock, with per-actor lanes and nesting;
  disabled by default via the :data:`NULL_TRACER` singleton (near-zero
  overhead at instrument sites).
* :class:`MetricsRegistry` — counters, gauges, histograms (bytes moved,
  SMSG/BTE picks, queue depths, bucket occupancy, retries).
* Exporters — Chrome trace-event JSON (Perfetto-loadable), JSON-lines
  event logs, and text summaries.
* Analysis — :func:`critical_path` extraction over the span DAG and
  :func:`reconcile_totals` against :mod:`repro.core.breakdown` figures.
* Cross-run performance — :class:`RunStore` append-only run records,
  :func:`compare_record` regression gating against a rolling
  :class:`Baseline`, :class:`ProbeSampler` live DES-clock probes with SLO
  rules, and :func:`write_dashboard` self-contained HTML reports
  (``python -m repro perf record|compare|report``).

Typical use::

    from repro.obs import tracing, write_chrome_trace, critical_path

    with tracing() as tracer:
        fw = HybridFramework(case, decomp)   # construct *inside* the context
        fw.run(10)
    write_chrome_trace("trace.json", tracer.trace, tracer.metrics)
    print(critical_path(tracer.trace).table())

Or drive the packaged campaign: ``python -m repro trace``.
"""

from repro.obs.analysis import (
    CriticalPath,
    ReconcileRow,
    critical_path,
    reconcile_table,
    reconcile_totals,
)
from repro.obs.export import (
    lane_summary,
    to_chrome_trace,
    to_jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.perf import (
    DEFAULT_POLICIES,
    Baseline,
    MetricPolicy,
    MetricVerdict,
    RegressionReport,
    RunRecord,
    RunStore,
    collect_run_record,
    compare_record,
    machine_fingerprint,
)
from repro.obs.probes import (
    ProbeSampler,
    SloAlert,
    SloRule,
    SummarySlo,
    default_slos,
    insitu_share_slo,
    standard_probes,
)
from repro.obs.report import render_dashboard, write_dashboard
from repro.obs.tracer import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Trace,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "CriticalPath",
    "ReconcileRow",
    "critical_path",
    "reconcile_table",
    "reconcile_totals",
    "lane_summary",
    "to_chrome_trace",
    "to_jsonl_lines",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_POLICIES",
    "Baseline",
    "MetricPolicy",
    "MetricVerdict",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "collect_run_record",
    "compare_record",
    "machine_fingerprint",
    "ProbeSampler",
    "SloAlert",
    "SloRule",
    "SummarySlo",
    "default_slos",
    "insitu_share_slo",
    "standard_probes",
    "render_dashboard",
    "write_dashboard",
    "NULL_TRACER",
    "InstantRecord",
    "NullTracer",
    "SpanRecord",
    "Trace",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "tracing",
]
