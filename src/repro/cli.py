"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``    — print the modeled Table I and Table II reproductions;
* ``simulate``  — run the functional hybrid pipeline on a small flame and
  print per-step analysis results;
* ``track``     — run the Fig.-1 feature-tracking experiment;
* ``render``    — render the flame in both visualization modes to PPM;
* ``tradeoff``  — print the post-processing vs concurrent trade-off table;
* ``schedule``  — replay the full-scale staging schedule and report
  queue behaviour for a bucket count;
* ``trace``     — replay the schedule under the tracer and emit a
  Chrome/Perfetto trace (with causal flow arrows), causal-vs-heuristic
  critical-path reconciliation, and model reconciliation; ``--diff``
  aligns the run against a previously exported trace and reports
  per-bucket/per-stage/per-flow deltas (text + HTML);
* ``blame``     — decompose the traced run's makespan (and each
  timestep's end-to-end latency) into compute / transport / queue-wait /
  retry-and-backoff / scheduler-idle buckets that sum exactly to the
  window;
* ``faults``    — run the staging workload under seeded fault injection
  and report recovery behaviour per scenario;
* ``capacity``  — replay a per-tenant campaign with the byte-accurate
  capacity ledger attached and report staging-memory watermarks, NIC
  occupancy, leaked regions, and measured-vs-analytic headroom, with a
  ``--gate`` smoke mode (clean runs must be leak-free and within the
  analytic bound; ``--inject-leak`` must be detected);
* ``perf``      — cross-run performance: ``record`` appends the canonical
  run record to a store, ``compare`` gates a fresh run against the
  committed baseline (nonzero exit on regression), ``report`` renders the
  self-contained HTML dashboard;
* ``serve``     — drain a multi-tenant JSONL campaign batch through the
  service layer (fair-share queue, per-tenant quotas, sharded staging,
  memoized schedule cache) and emit the per-tenant report;
* ``top``       — live view of a draining campaign batch: per-tenant
  queue/cache/alert state over the streaming telemetry bus, with
  ``--follow --jsonl`` event export for collectors and per-tenant
  burn-rate alert gates;
* ``submit``    — append one validated job spec to a JSONL batch file;
* ``jobs``      — list job records from the service state directory.

File-writing commands put their artifacts under ``--out-dir``
(default ``repro_out/``): an explicit *relative* output path is placed
under ``--out-dir`` too, while an absolute path is used as given.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path


def _anchor(dir_path: str | Path) -> Path:
    """Resolve a user-supplied directory against the invocation CWD once.

    Every command anchors ``--out-dir``/``--state-dir`` through here, so
    a relative directory means the same place no matter which helper
    later joins paths onto it (``repro control`` used to scatter its
    JSON into the bare CWD when invoked from a subdirectory).
    """
    path = Path(dir_path).expanduser()
    return path if path.is_absolute() else Path.cwd() / path


def _resolve_out(explicit: str | None, out_dir: str, default_name: str
                 ) -> Path:
    """Resolve an output path against ``--out-dir``.

    ``None`` -> ``<out-dir>/<default_name>``; a relative path lands under
    ``--out-dir`` (so ``--out foo.json`` does not scatter artifacts into
    the CWD); an absolute path is respected as given.
    """
    base = _anchor(out_dir)
    if explicit is None:
        path = base / default_name
    else:
        path = Path(explicit).expanduser()
        if not path.is_absolute():
            path = base / path
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
    from repro.util import TextTable

    configs = [ExperimentConfig.paper_4896(), ExperimentConfig.paper_9440()]
    breakdowns = {c.name: ScaledExperiment(c).breakdown() for c in configs}
    t1 = TextTable(["", *breakdowns], title="Table I (modeled)")
    t1.add_row(["Simulation time (sec.)",
                *(round(b.simulation_time, 2) for b in breakdowns.values())])
    t1.add_row(["I/O read time (sec.)",
                *(round(b.io_read_time, 2) for b in breakdowns.values())])
    t1.add_row(["I/O write time (sec.)",
                *(round(b.io_write_time, 2) for b in breakdowns.values())])
    t1.add_row(["Data size (GB)",
                *(round(b.data_gb, 1) for b in breakdowns.values())])
    print(t1)

    b = breakdowns[configs[0].name]
    t2 = TextTable(["analysis", "in-situ (s)", "movement (s)", "movement (MB)",
                    "in-transit (s)"],
                   title="\nTable II at 4896 cores (modeled)")
    for v in AnalyticsVariant:
        t2.add_row(b.analytics[v.value].table_row())
    print(t2)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import HybridFramework
    from repro.sim import LiftedFlameCase, StructuredGrid3D
    from repro.util import TextTable, fmt_bytes
    from repro.vmpi import BlockDecomposition3D

    shape = tuple(args.grid)
    grid = StructuredGrid3D(shape)
    case = LiftedFlameCase(grid, seed=args.seed)
    decomp = BlockDecomposition3D(shape, tuple(args.ranks))
    fw = HybridFramework(case, decomp, n_buckets=args.buckets,
                         streaming_topology=args.streaming)
    result = fw.run(args.steps)
    table = TextTable(["step", "mean T", "max T", "merge-tree maxima"])
    for step in result.analysed_steps:
        stats = result.statistics[step]["T"]
        tree = result.merge_trees[step].reduced()
        table.add_row([step, round(stats.mean, 4), round(stats.maximum, 3),
                       len(tree.leaves())])
    print(table)
    print(f"intermediate data moved: {fmt_bytes(result.bytes_moved)}")
    if args.report:
        from repro.core.report import run_report
        print("\n" + run_report(fw, result))
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.analysis.topology import segment_superlevel, track_features
    from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
    from repro.util import TextTable

    grid = StructuredGrid3D((32, 16, 12), lengths=(4.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=args.seed, kernel_rate=1.2)
    solver = S3DProxy(case)
    segs = []
    for _ in range(args.steps):
        solver.step()
        segs.append(segment_superlevel(solver.fields["T"].copy(),
                                       args.threshold, min_persistence=0.15))
    tracks = track_features(segs)
    table = TextTable(["track", "birth", "death", "lifetime"])
    for t in tracks:
        table.add_row([t.track_id, t.birth, t.death, t.lifetime])
    print(table)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.analysis.visualization import (
        Camera,
        TransferFunction,
        downsample_decomposed,
        render_blocks_insitu,
        render_intransit,
    )
    from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
    from repro.util import image_rmse, write_ppm
    from repro.vmpi import BlockDecomposition3D

    shape = (32, 24, 16)
    grid = StructuredGrid3D(shape, lengths=(4.0, 3.0, 2.0))
    solver = S3DProxy(LiftedFlameCase(grid, seed=args.seed, kernel_rate=2.0))
    solver.step(args.steps)
    field = solver.fields["T"]
    decomp = BlockDecomposition3D(shape, (2, 2, 2))
    tf = TransferFunction.hot(float(field.min()), float(field.max()))
    cam = Camera(image_shape=(args.size, args.size))
    insitu = render_blocks_insitu(field, decomp, cam, tf)
    hybrid = render_intransit(downsample_decomposed(field, decomp, args.stride),
                              shape, cam, tf)
    write_ppm(f"{args.prefix}_insitu.ppm", insitu)
    write_ppm(f"{args.prefix}_hybrid.ppm", hybrid)
    print(f"wrote {args.prefix}_insitu.ppm and {args.prefix}_hybrid.ppm "
          f"(RMSE {image_rmse(insitu, hybrid):.4f})")
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.core import ExperimentConfig, ScaledExperiment, TradeoffModel
    from repro.util import TextTable, fmt_bytes, fmt_seconds

    model = TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()))
    outcomes = {
        f"post @{args.checkpoint_stride}": model.postprocessing(
            args.checkpoint_stride, args.run_steps),
        "hybrid @1": model.concurrent_hybrid(1),
        "hybrid @10": model.concurrent_hybrid(10),
        "in-situ @1": model.fully_insitu(1),
    }
    t = TextTable(["strategy", "stride", "sim slowdown", "time to insight",
                   "storage/analysed step"])
    for name, o in outcomes.items():
        t.add_row([name, o.temporal_stride, f"{o.slowdown_percent:.2f}%",
                   fmt_seconds(o.time_to_insight), fmt_bytes(o.storage_bytes)])
    print(t)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment

    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    sched = exp.run_schedule(n_steps=args.steps, n_buckets=args.buckets,
                             analyses=(AnalyticsVariant.TOPO_HYBRID,))
    state = "keeps pace" if sched.keeps_pace() else "queue grows"
    print(f"{args.buckets} buckets over {args.steps} steps: "
          f"max queue wait {sched.max_queue_wait():.2f} s "
          f"({state}); makespan {sched.makespan:.1f} s")
    return 0 if sched.keeps_pace() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import ExperimentConfig, ScaledExperiment
    from repro.obs import (
        lane_summary,
        reconcile_paths,
        reconcile_table,
        reconcile_totals,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.obs.tracer import tracing

    out = _resolve_out(args.out, args.out_dir, "repro_trace.json")
    jsonl = (_resolve_out(args.jsonl, args.out_dir, "repro_trace.jsonl")
             if args.jsonl else None)

    if args.functional:
        # Trace the laptop-scale functional pipeline (wall clock is the
        # interesting axis there — in-situ Python work takes no DES time).
        from repro.core import HybridFramework
        from repro.sim import LiftedFlameCase, StructuredGrid3D
        from repro.vmpi import BlockDecomposition3D

        shape = (16, 12, 8)
        with tracing() as tracer:
            fw = HybridFramework(LiftedFlameCase(StructuredGrid3D(shape),
                                                 seed=7),
                                 BlockDecomposition3D(shape, (2, 2, 1)),
                                 n_buckets=2)
            fw.run(args.steps)
        clock = "wall"
        expected = None
    else:
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        tracer, sched, expected = exp.traced_schedule(
            n_steps=args.steps, n_buckets=args.buckets,
            analysis_interval=args.interval)
        clock = "trace"

    doc = write_chrome_trace(out, tracer.trace, tracer.metrics,
                             clock=clock)
    problems = validate_chrome_trace(doc)
    n_spans = len(tracer.trace.closed_spans())
    print(f"wrote {out}: {len(doc['traceEvents'])} events, "
          f"{n_spans} spans, {len(tracer.trace.lanes())} lanes "
          f"(load in Perfetto / chrome://tracing)")
    if jsonl is not None:
        n_lines = write_jsonl(jsonl, tracer.trace, tracer.metrics)
        print(f"wrote {jsonl} ({n_lines} lines)")
    if problems:
        print("trace validation FAILED:")
        for p in problems[:10]:
            print(f"  - {p}")
        return 1
    print("trace validation: ok\n")

    print(lane_summary(tracer.trace, clock=clock))
    print()
    paths = reconcile_paths(tracer.trace)
    print(paths.table())
    print()
    if not paths.ok:
        print("critical-path reconciliation FAILED: the heuristic path "
              "claims more time than recorded causality supports")
        return 1

    if args.diff:
        from repro.obs import diff_traces, load_trace
        from repro.obs.report import write_trace_diff

        other = load_trace(args.diff)
        diff = diff_traces(other, tracer.trace,
                           a_label=Path(args.diff).stem, b_label="this run")
        print(diff.table())
        print()
        diff_html = _resolve_out(args.diff_html, args.out_dir,
                                 "trace_diff.html")
        write_trace_diff(diff_html, diff)
        print(f"wrote {diff_html}")
        print()

    reconciled = True
    if expected is not None:
        obs = tracer.trace.stage_totals()
        observed = {
            "simulation": obs.get("simulation", 0.0),
            "insitu": obs.get("insitu", 0.0),
            "movement+intransit": (obs.get("movement", 0.0)
                                   + obs.get("intransit", 0.0)),
        }
        rows = reconcile_totals(observed, expected)
        print(reconcile_table(rows))
        reconciled = all(r.ok(0.01) for r in rows)
        print()
    print(tracer.metrics.summary())
    return 0 if reconciled else 1


def _cmd_blame(args: argparse.Namespace) -> int:
    import json

    from repro.obs import blame, kernel_table, load_trace, top_kernels

    if args.trace:
        trace = load_trace(args.trace)
        source = args.trace
    elif args.functional:
        # The laptop-scale functional pipeline exercises the real
        # analysis kernels (merge trees, statistics, collectives), so
        # this is the mode where --top-kernels has something to rank.
        from repro.core import HybridFramework
        from repro.obs.tracer import tracing
        from repro.sim import LiftedFlameCase, StructuredGrid3D
        from repro.vmpi import BlockDecomposition3D

        shape = (16, 12, 8)
        with tracing() as tracer:
            fw = HybridFramework(LiftedFlameCase(StructuredGrid3D(shape),
                                                 seed=7),
                                 BlockDecomposition3D(shape, (2, 2, 1)),
                                 n_buckets=2)
            fw.run(args.steps)
        trace = tracer.trace
        source = f"functional pipeline ({args.steps} steps)"
    else:
        from repro.core import ExperimentConfig, ScaledExperiment

        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        tracer, _sched, _expected = exp.traced_schedule(
            n_steps=args.steps, n_buckets=args.buckets,
            analysis_interval=args.interval)
        trace = tracer.trace
        source = (f"paper_4896 schedule ({args.steps} steps, "
                  f"{args.buckets} buckets)")

    report = blame(trace)
    print(f"source: {source}")
    print(report.table())
    if args.top_kernels:
        print()
        print(kernel_table(top_kernels(trace, n=args.top_kernels)))
    out = _resolve_out(args.json, args.out_dir, "repro_blame.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2)
    print(f"\nwrote {out}")

    windows = [("overall", report.overall)] + [
        (f"step {s.step}", s.breakdown) for s in report.steps]
    bad = [name for name, bd in windows if not bd.check()]
    if bad:
        print(f"blame attribution FAILED: buckets do not sum to the "
              f"window for {', '.join(bad)}")
        return 1
    print(f"exact-sum check: ok ({len(windows)} windows, buckets sum to "
          f"each window within 1e-6)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultConfig, run_resilience_experiment
    from repro.util import TextTable

    scenarios: list[tuple[str, FaultConfig, dict]] = [
        ("baseline", FaultConfig(seed=args.seed), {}),
        ("flaky pulls",
         FaultConfig(seed=args.seed, pull_failure_rate=args.pull_failure_rate),
         {}),
        ("stalls",
         FaultConfig(seed=args.seed, pull_stall_rate=args.pull_stall_rate,
                     pull_stall_seconds=args.stall_seconds),
         {}),
        ("crashes",
         FaultConfig(seed=args.seed, crash_rate=args.crash_rate,
                     horizon=args.horizon),
         {}),
        ("crashes+restart",
         FaultConfig(seed=args.seed, crash_rate=args.crash_rate,
                     horizon=args.horizon),
         {"bucket_restart_delay": 2.0e-3,
          "max_bucket_restarts": 2 * args.buckets}),
        ("staging down",
         FaultConfig(seed=args.seed,
                     crash_times=tuple(1.0e-3 * (i + 1)
                                       for i in range(args.buckets))),
         {}),
    ]
    table = TextTable(["scenario", "crashes", "pull faults", "retries",
                       "reassigned", "restarts", "fallback", "failed",
                       "makespan (s)", "accounted"])
    ok = True
    for name, cfg, extra in scenarios:
        r = run_resilience_experiment(cfg, n_tasks=args.tasks,
                                      n_buckets=args.buckets, **extra)
        ok = ok and r.all_accounted and r.values_ok
        table.add_row([name, r.crashes_injected,
                       r.pull_failures_injected + r.pull_stalls_injected,
                       r.retries, r.reassignments, r.restarts,
                       r.fallback_tasks, r.accounting["failed"],
                       f"{r.makespan:.4f}",
                       "yes" if r.all_accounted and r.values_ok else "NO"])
    print(table)
    print("every task completed or terminally failed, drained() fired, "
          "values verified" if ok
          else "ACCOUNTING FAILED: tasks lost or values wrong")
    return 0 if ok else 1


def _cmd_control(args: argparse.Namespace) -> int:
    import json

    from repro.control import ControlPolicy, run_control_scenario
    from repro.util import TextTable

    policy = ControlPolicy(window=args.window,
                           cooldown_windows=args.cooldown)
    report = run_control_scenario(
        n_steps=args.steps, n_buckets=args.buckets,
        analysis_interval=args.interval, seed=args.seed,
        crash_times=tuple(args.crash_times),
        pull_stall_rate=args.stall_rate,
        pull_stall_seconds=args.stall_seconds,
        lease_timeout=args.lease_timeout,
        policy=policy)
    ctrl = report.controller
    table = TextTable(["run", "makespan (s)", "max queue wait (s)",
                       "decisions", "final pool"])
    table.add_row(["static", f"{report.static_makespan:.4f}",
                   f"{report.static_max_queue_wait:.4f}",
                   0, args.buckets])
    table.add_row(["adaptive", f"{report.adaptive_makespan:.4f}",
                   f"{report.adaptive_max_queue_wait:.4f}",
                   len(ctrl.decisions), ctrl.pool_trajectory[-1][1]])
    print(f"fault plan: crashes at {list(args.crash_times)} s, "
          f"{100 * args.stall_rate:.0f}% pulls stall "
          f"{args.stall_seconds:.1f} s (seed {args.seed})")
    print(table)
    print(f"speedup: {report.speedup:.2f}x "
          f"(memory-bounded pool cap: {ctrl.max_buckets} buckets)")
    if ctrl.decisions:
        print("\ndecision log:")
        for d in ctrl.decisions:
            print(f"  [w{d.window} t={d.t:.2f}s] {d.kind}: {d.subject} "
                  f"{d.before} -> {d.after}  ({d.reason})")
    else:
        print("\nno decisions taken (healthy run)")
    out = _resolve_out(args.json, args.out_dir, "repro_control.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report.summary(), fh, indent=2, sort_keys=True)
    print(f"\nwrote {out}")
    if args.gate and not report.improved:
        print("control gate FAILED: adaptive makespan exceeds static")
        return 1
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    import json

    from repro.obs.capacity import LEAK_INJECTOR_NODE, run_capacity_scenario
    from repro.util import TextTable

    outcome = run_capacity_scenario(
        n_steps=args.steps, n_buckets=args.buckets,
        analysis_interval=args.interval, n_shards=args.shards,
        tenants=tuple(args.tenants), inject_leak=args.inject_leak,
        leak_bytes=args.leak_bytes)
    merged = outcome["merged"]

    headroom = TextTable(["tenant run", "analytic bound", "measured peak",
                          "headroom", "nic peak", "leaks"],
                         title="measured vs analytic staging memory")
    for tenant, rep in outcome["tenants"].items():
        headroom.add_row([
            tenant, rep.analytic_bound_bytes, rep.peak_resident_bytes,
            rep.headroom_bytes if rep.headroom_bytes is not None else "-",
            rep.nic_peak_bytes, len(rep.leaks)])
    print(headroom.render())
    print()
    print(merged.watermark_table())
    print()
    print(merged.leak_table())

    out = _resolve_out(args.json, args.out_dir, "repro_capacity.json")
    payload = {
        "tenants": {t: r.to_dict() for t, r in outcome["tenants"].items()},
        "merged": merged.to_dict(),
        "makespans": outcome["makespans"],
        "inject_leak": outcome["inject_leak"],
        "n_events": len(outcome["events"]),
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nwrote {out}")
    if args.events:
        events_path = _resolve_out(args.events, args.out_dir,
                                   "repro_capacity.jsonl")
        events_path.write_text("\n".join(outcome["events"]) + "\n",
                               encoding="utf-8")
        print(f"wrote {events_path} ({len(outcome['events'])} "
              f"capacity events)")

    violations = sum(r.headroom_violations
                     for r in outcome["tenants"].values())
    injected = [leak for leak in merged.leaks
                if leak["source"] == LEAK_INJECTOR_NODE]
    genuine = [leak for leak in merged.leaks
               if leak["source"] != LEAK_INJECTOR_NODE]
    print(f"\n{merged.n_registers} registers / {merged.n_releases} "
          f"releases across {len(outcome['tenants'])} tenant run(s); "
          f"peak resident {merged.peak_resident_bytes} bytes, "
          f"{len(merged.leaks)} leak(s), {violations} headroom "
          f"violation(s)")
    if not args.gate:
        return 0
    rc = 0
    if genuine:
        print(f"capacity gate FAILED: {len(genuine)} leaked region(s) "
              f"survived the drain")
        rc = 1
    if violations:
        print(f"capacity gate FAILED: measured peak exceeded the "
              f"analytic staging_memory_needed bound in {violations} "
              f"run(s)")
        rc = 1
    if args.inject_leak and not injected:
        print("capacity gate FAILED: the injected retention fault was "
              "not detected")
        rc = 1
    if rc == 0:
        print("capacity gate: PASS")
    return rc


def _parse_kv_floats(pairs: list[str], option: str) -> dict[str, float]:
    """``["a=1.5", "b=0"] -> {"a": 1.5, "b": 0.0}`` with a clear error."""
    out: dict[str, float] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"{option} expects KEY=VALUE, got {pair!r}")
        try:
            out[key] = float(raw)
        except ValueError:
            raise SystemExit(
                f"{option}: value for {key!r} is not a number: {raw!r}"
            ) from None
    return out


def _cmd_perf(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.perf import (
        DEFAULT_POLICIES,
        Baseline,
        MetricPolicy,
        RunStore,
        collect_run_record,
        compare_record,
    )

    out_dir = _anchor(args.out_dir)
    store = RunStore(args.store if args.store else out_dir / "perf")
    baseline_store = RunStore(args.baseline)
    perturb = _parse_kv_floats(args.perturb, "--perturb") or None
    policies = DEFAULT_POLICIES
    if args.tolerance:
        overrides = tuple(
            MetricPolicy(pattern, tolerance=tol)
            for pattern, tol in _parse_kv_floats(args.tolerance,
                                                 "--tolerance").items())
        # Wall-clock metrics stay ungated even under a catch-all
        # override: they are host noise, and a '*=X' tolerance must not
        # silently re-gate them.
        policies = ((MetricPolicy("wall.*", gate=False),)
                    + overrides + DEFAULT_POLICIES)

    if args.action == "record":
        record = collect_run_record(n_steps=args.steps,
                                    n_buckets=args.buckets,
                                    source=args.source, perturb=perturb,
                                    fault_seed=args.seed)
        path = store.append(record)
        print(f"recorded run {record.run_id} "
              f"(git {record.git_sha or 'n/a'}) -> {path}")
        print(f"  {len(record.metrics)} metrics, "
              f"{int(record.metrics.get('probe.samples', 0))} probe "
              f"samples, {int(record.metrics.get('slo.alerts', 0))} SLO "
              f"alerts; store now holds {len(store)} runs")
        return 0

    if args.action == "compare":
        base_records = baseline_store.records()
        if not base_records:
            print(f"no baseline records in {baseline_store.path} — run "
                  f"`python -m repro perf record --store "
                  f"{baseline_store.root}` first")
            return 2
        baseline = Baseline.from_records(base_records, window=args.window)
        record = collect_run_record(n_steps=args.steps,
                                    n_buckets=args.buckets,
                                    source="compare", perturb=perturb,
                                    fault_seed=args.seed)
        report = compare_record(record, baseline, policies)
        print(report.table())
        usages = record.meta.get("top_kernels") or []
        if usages:
            from repro.obs.blame import KernelUsage, kernel_table

            print()
            print(kernel_table([KernelUsage(**u) for u in usages]))
            print(f"(kernel ranking recorded under backend "
                  f"{record.meta.get('backend', 'reference')!r})")
        counts = report.counts()
        summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        print(f"\ngate: {'PASS' if report.ok else 'FAIL'} ({summary})")
        return 0 if report.ok else 1

    # report: render the dashboard over the store (fall back to the
    # committed baseline so a fresh checkout still gets a page).
    from repro.obs.report import write_dashboard

    records = store.records()
    which = store
    if not records:
        records = baseline_store.records()
        which = baseline_store
    report = None
    base_records = baseline_store.records()
    if records and base_records:
        baseline = Baseline.from_records(base_records, window=args.window)
        report = compare_record(records[-1], baseline, policies)
    out = Path(args.html) if args.html else out_dir / "perf_dashboard.html"
    write_dashboard(out, records, report)
    print(f"wrote {out} ({len(records)} runs from {which.path}"
          f"{', with gate panel' if report is not None else ''})")
    if not records:
        print("store is empty — run `python -m repro perf record` first")
    return 0


def _service_state(args: argparse.Namespace) -> Path:
    """Service state directory (schedule cache + job records)."""
    state = _anchor(args.state_dir) if args.state_dir else (
        _anchor(args.out_dir) / "service")
    state.mkdir(parents=True, exist_ok=True)
    return state


def _load_batch(path: Path) -> tuple[list, list]:
    """Parse a JSONL batch file into (specs, quotas).

    Each line is either a job spec or ``{"quota": {...}}``.
    """
    import json

    from repro.service import JobSpec, TenantQuota

    specs, quotas = [], []
    if not path.exists():
        raise SystemExit(f"no such batch file: {path}")
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON: {exc}") from None
            try:
                if "quota" in d:
                    quotas.append(TenantQuota(**d["quota"]))
                else:
                    specs.append(JobSpec.from_dict(d))
            except (TypeError, ValueError) as exc:
                raise SystemExit(f"{path}:{lineno}: {exc}") from None
    return specs, quotas


def _parse_quota_flags(pairs: list[str]) -> list:
    """``--quota TENANT=N`` flags -> :class:`TenantQuota` list."""
    from repro.service import TenantQuota

    quotas = []
    for pair in pairs:
        tenant, sep, raw = pair.partition("=")
        if not sep or not tenant:
            raise SystemExit(f"--quota expects TENANT=N, got {pair!r}")
        try:
            quotas.append(TenantQuota(tenant, max_concurrent=int(raw)))
        except ValueError as exc:
            raise SystemExit(f"--quota {pair!r}: {exc}") from None
    return quotas


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.obs.perf import RunStore
    from repro.service import CampaignService, ScheduleCache, TenantQuota

    specs, quotas = _load_batch(Path(args.jobs))
    if not specs:
        raise SystemExit(f"batch file {args.jobs} holds no jobs")
    quotas += _parse_quota_flags(args.quota)

    state = _service_state(args)
    service = CampaignService(
        workers=args.workers,
        quotas=quotas,
        default_quota=TenantQuota("*", max_concurrent=args.default_quota),
        cache=ScheduleCache(state / "cache"),
        jobs_store=RunStore(state / "jobs"))
    report = service.run_batch(specs)

    print(report.table())
    if report.shard_balance is not None:
        bal = report.shard_balance
        print(f"shard balance over {bal.n_shards} shard(s): "
              f"imbalance {bal.imbalance('tasks'):.2f}x tasks, "
              f"{bal.imbalance('bytes'):.2f}x bytes")
    out = _resolve_out(args.report, args.out_dir, "service_report.json")
    out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True),
                   encoding="utf-8")
    print(f"wrote {out}")

    failed = [j for j in report.jobs if j.state.value == "failed"]
    stuck = [j for j in report.jobs if j.state.value not in ("done", "failed")]
    rc = 0
    for job in failed:
        print(f"FAILED {job.job_id}: {job.error}")
        rc = 1
    for job in stuck:
        print(f"STUCK {job.job_id}: still {job.state.value} after drain")
        rc = 1
    if args.min_cache_hit_rate is not None \
            and report.cache_hit_rate < args.min_cache_hit_rate:
        print(f"CACHE MISS RATE TOO HIGH: hit rate "
              f"{report.cache_hit_rate:.0%} < required "
              f"{args.min_cache_hit_rate:.0%}")
        rc = 1
    if args.expect_quota_held and report.held_events == 0:
        print("EXPECTED QUOTA ENFORCEMENT: no job was ever held")
        rc = 1
    return rc


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs import (
        TelemetryBus,
        default_objectives,
        disable_tracing,
        enable_tracing,
        event_to_json,
        render_top,
    )
    from repro.service import CampaignService, ScheduleCache, TenantQuota

    specs, quotas = _load_batch(Path(args.jobs))
    if not specs:
        raise SystemExit(f"batch file {args.jobs} holds no jobs")
    quotas += _parse_quota_flags(args.quota)

    bus = TelemetryBus(capacity=args.capacity)
    sub = bus.subscribe("cli")
    # The live plane needs a recording tracer: the bus hooks live on
    # Tracer, and everything publishes DES-clock data only, so the
    # event stream of a same-seed batch is byte-identical across runs.
    # The service attaches the bus itself once its worker pool is up.
    enable_tracing()
    out_fh = None
    try:
        # No --state-dir -> in-memory schedule cache: re-running the
        # same batch replays every job identically instead of serving
        # a warmed cache (which would change the event stream).
        cache = (ScheduleCache(_anchor(args.state_dir) / "cache")
                 if args.state_dir else None)
        service = CampaignService(
            workers=args.workers,
            quotas=quotas,
            default_quota=TenantQuota("*", max_concurrent=args.default_quota),
            cache=cache,
            bus=bus,
            objectives=default_objectives(
                queue_wait_target=args.queue_wait_slo,
                slowdown_target=args.slowdown_slo),
            probe_interval=args.probe_interval)
        for spec in specs:
            service.submit(spec)
        if args.out:
            out_path = _resolve_out(args.out, args.out_dir,
                                    "repro_live.jsonl")
            out_fh = open(out_path, "w", encoding="utf-8")

        def drain_events() -> None:
            for event in sub.poll():
                line = event_to_json(event)
                if args.jsonl:
                    print(line)
                if out_fh is not None:
                    out_fh.write(line + "\n")

        # Drive the service engine event-by-event, repainting once per
        # --slice of service time; the cadence never changes the event
        # stream, only how often the screen refreshes, and the clock
        # stops exactly at the drain (no overshoot to a slice boundary).
        boundary = args.slice
        while True:
            nxt = service.engine.next_event_time()
            if nxt is None:
                break
            service.engine.run(until=nxt)
            if service.engine.now < boundary and not service.engine.idle():
                continue
            boundary = service.engine.now + args.slice
            drain_events()
            if args.follow and not args.jsonl:
                print(render_top(service, bus, service.monitor))
                print()
            if args.follow and not args.once:
                time.sleep(args.refresh)
        drain_events()
        report = service.report()
    finally:
        if out_fh is not None:
            out_fh.close()
        disable_tracing()

    by_tenant = {t: r.alerts for t, r in sorted(report.tenants.items())}
    if args.jsonl:
        print(json.dumps({"summary": {
            "duration": report.duration,
            "jobs": len(report.jobs),
            "all_done": report.all_done,
            "events_published": bus.published,
            "events_dropped": bus.dropped_total,
            "events_dropped_by_kind": dict(sorted(
                bus.dropped_by_kind.items())),
            "subscriber_dropped": sub.dropped,
            "alerts": by_tenant,
        }}, sort_keys=True, separators=(",", ":")))
    else:
        print(render_top(service, bus, service.monitor))
        print(f"\nbatch drained at t={report.duration:.3f}s: "
              f"{bus.published} events, {bus.dropped_total} dropped, "
              f"{len(report.alerts)} alert(s) "
              f"({', '.join(f'{t}={n}' for t, n in by_tenant.items())})")
    if out_fh is not None:
        print(f"wrote {out_path}", file=sys.stderr)

    rc = 0
    for job in report.jobs:
        if job.state.value == "failed":
            print(f"FAILED {job.job_id}: {job.error}", file=sys.stderr)
            rc = 1
    for tenant in args.expect_alerts:
        if not by_tenant.get(tenant):
            print(f"EXPECTED ALERTS for tenant {tenant!r}, got none",
                  file=sys.stderr)
            rc = 1
    for tenant in args.expect_clean:
        if by_tenant.get(tenant):
            print(f"EXPECTED NO ALERTS for tenant {tenant!r}, got "
                  f"{by_tenant[tenant]}", file=sys.stderr)
            rc = 1
    return rc


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import JobSpec

    try:
        spec = JobSpec(
            tenant=args.tenant, name=args.name, config=args.config,
            n_steps=args.steps, n_buckets=args.buckets,
            analysis_interval=args.interval,
            analyses=tuple(args.analyses) if args.analyses else
            ("VIS_HYBRID", "TOPO_HYBRID", "STATS_HYBRID"),
            n_shards=args.shards, submit_at=args.submit_at,
            lease_timeout=args.lease_timeout,
            fault_seed=args.fault_seed,
            crash_times=tuple(args.crash_times),
            pull_failure_rate=args.pull_failure_rate,
            pull_stall_rate=args.stall_rate,
            pull_stall_seconds=args.stall_seconds)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    path = Path(args.jobs)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(spec.to_dict(), sort_keys=True) + "\n")
    print(f"queued {spec.tenant}/{spec.name} ({spec.config}, "
          f"{spec.n_steps} steps, {spec.n_buckets} buckets, "
          f"{spec.n_shards} shard(s)) -> {path}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.obs.perf import RunStore
    from repro.service.api import JOBS_SOURCE

    state = _service_state(args)
    store = RunStore(state / "jobs")
    records = [r for r in store.records() if r.source == JOBS_SOURCE]
    if args.tenant:
        records = [r for r in records
                   if r.meta.get("tenant") == args.tenant]
    if args.limit:
        records = records[-args.limit:]
    if not records:
        print(f"no job records in {store.path}")
        return 0
    header = (f"{'job':<28} {'tenant':<10} {'state':<7} {'cache':<5} "
              f"{'wait (s)':>9} {'makespan (s)':>12}")
    print(header)
    print("-" * len(header))
    for rec in records:
        meta = rec.meta
        wait = rec.metrics.get("service.queue_wait_s", 0.0)
        span = rec.metrics.get("service.makespan_s", 0.0)
        print(f"{meta.get('job_id', rec.run_id):<28} "
              f"{meta.get('tenant', '?'):<10} "
              f"{meta.get('state', '?'):<7} "
              f"{'hit' if meta.get('cache_hit') else 'miss':<5} "
              f"{wait:>9.3f} {span:>12.3f}")
    print(f"{len(records)} job(s) from {store.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid in-situ/in-transit analysis framework "
                    "(SC'12 reproduction)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="kernel backend for this invocation "
                             "(reference, numpy, ...); overrides the "
                             "REPRO_BACKEND environment variable")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print the Table I/II reproductions")

    p = sub.add_parser("simulate", help="run the functional hybrid pipeline")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--grid", type=int, nargs=3, default=[24, 16, 12])
    p.add_argument("--ranks", type=int, nargs=3, default=[2, 2, 2])
    p.add_argument("--buckets", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--streaming", action="store_true",
                   help="stream the topology glue (§VI mode)")
    p.add_argument("--report", action="store_true",
                   help="print the full run report (tasks, occupancy)")

    p = sub.add_parser("track", help="feature tracking (Fig. 1)")
    p.add_argument("--steps", type=int, default=12)
    p.add_argument("--threshold", type=float, default=1.6)
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser("render", help="render both visualization modes")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--stride", type=int, default=2)
    p.add_argument("--size", type=int, default=48)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--prefix", default="repro_render")

    p = sub.add_parser("tradeoff", help="analysis delivery trade-off table")
    p.add_argument("--checkpoint-stride", type=int, default=400)
    p.add_argument("--run-steps", type=int, default=2000)

    p = sub.add_parser("schedule", help="full-scale staging schedule replay")
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--buckets", type=int, default=8)

    p = sub.add_parser("trace", help="traced schedule replay -> Chrome trace")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--buckets", type=int, default=8)
    p.add_argument("--interval", type=int, default=1,
                   help="analysis interval (steps between analysed steps)")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--out", default=None,
                   help="Chrome trace-event output path "
                        "(default: <out-dir>/repro_trace.json)")
    p.add_argument("--jsonl", default=None,
                   help="also write a JSON-lines event log here (relative "
                        "paths land under --out-dir)")
    p.add_argument("--functional", action="store_true",
                   help="trace the laptop-scale functional pipeline instead "
                        "of the full-scale DES replay")
    p.add_argument("--diff", default=None, metavar="OTHER",
                   help="diff this run against a previously exported trace "
                        "(JSONL keeps flow fidelity; the other run is the "
                        "reference)")
    p.add_argument("--diff-html", default=None,
                   help="diff report HTML path "
                        "(default: <out-dir>/trace_diff.html)")

    p = sub.add_parser("blame", help="latency blame attribution over the "
                                     "causal flow graph")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--buckets", type=int, default=8)
    p.add_argument("--interval", type=int, default=1,
                   help="analysis interval (steps between analysed steps)")
    p.add_argument("--trace", default=None,
                   help="attribute an existing trace export (JSONL or "
                        "Chrome JSON) instead of replaying the schedule")
    p.add_argument("--functional", action="store_true",
                   help="attribute the laptop-scale functional pipeline "
                        "(exercises the backend kernels)")
    p.add_argument("--top-kernels", type=int, default=0, metavar="N",
                   help="also rank the top N kernels by wall time "
                        "(kernel-tagged spans from the backend seam)")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--json", default=None,
                   help="blame report JSON path "
                        "(default: <out-dir>/repro_blame.json)")

    p = sub.add_parser("faults", help="staging resilience under fault "
                                      "injection")
    p.add_argument("--tasks", type=int, default=32)
    p.add_argument("--buckets", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pull-failure-rate", type=float, default=0.10)
    p.add_argument("--pull-stall-rate", type=float, default=0.10)
    p.add_argument("--stall-seconds", type=float, default=1.0e-3)
    p.add_argument("--crash-rate", type=float, default=100.0,
                   help="expected bucket crashes per simulated second")
    p.add_argument("--horizon", type=float, default=0.06,
                   help="crash sampling horizon (simulated seconds)")

    p = sub.add_parser("control", help="adaptive in-situ/in-transit "
                                       "controller vs static split under "
                                       "injected faults")
    p.add_argument("--steps", type=int, default=12)
    p.add_argument("--buckets", type=int, default=4)
    p.add_argument("--interval", type=int, default=1,
                   help="analysis interval (steps between analysed steps)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection seed (decision log is "
                        "deterministic per seed)")
    p.add_argument("--crash-times", type=float, nargs="*",
                   default=[30.0, 55.0],
                   help="bucket crash instants (simulated seconds)")
    p.add_argument("--stall-rate", type=float, default=0.05,
                   help="probability an RDMA pull stalls")
    p.add_argument("--stall-seconds", type=float, default=2.0,
                   help="seconds each stalled pull loses")
    p.add_argument("--lease-timeout", type=float, default=5.0,
                   help="scheduler lease timeout for crash recovery")
    p.add_argument("--window", type=int, default=2,
                   help="analysed steps per control decision window")
    p.add_argument("--cooldown", type=int, default=2,
                   help="cooldown windows between same-actuator decisions")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--json", default=None,
                   help="decision-log artifact path "
                        "(default: <out-dir>/repro_control.json)")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 unless the adaptive makespan is <= static")

    p = sub.add_parser("capacity", help="byte-accurate staging-memory and "
                                        "NIC-bandwidth ledger report")
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--buckets", type=int, default=4)
    p.add_argument("--interval", type=int, default=1,
                   help="analysis interval (steps between analysed steps)")
    p.add_argument("--shards", type=int, default=1,
                   help="DataSpaces shards per tenant replay")
    p.add_argument("--tenants", nargs="+", default=["alpha", "beta"],
                   metavar="TENANT",
                   help="tenant run per name (default: alpha beta)")
    p.add_argument("--inject-leak", action="store_true",
                   help="arm a seeded retention fault on the last "
                        "tenant's run (the leak detector must find it)")
    p.add_argument("--leak-bytes", type=int, default=1 << 20,
                   help="size of the injected leaked region "
                        "(default: 1 MiB)")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--json", default=None,
                   help="capacity report JSON path "
                        "(default: <out-dir>/repro_capacity.json)")
    p.add_argument("--events", default=None,
                   help="also write the kind=capacity bus-event stream "
                        "here as JSONL (byte-identical across same-seed "
                        "runs; relative paths land under --out-dir)")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 on leaked regions or a measured peak over "
                        "the analytic bound (and, with --inject-leak, "
                        "unless the injected leak is detected)")

    p = sub.add_parser("perf", help="cross-run records, regression gate, "
                                    "HTML dashboard")
    p.add_argument("action", choices=("record", "compare", "report"),
                   help="record: append a run record to the store; "
                        "compare: gate a fresh run against the baseline "
                        "(exit 1 on regression); report: write the HTML "
                        "dashboard")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--store", default=None,
                   help="run-store directory (default: <out-dir>/perf)")
    p.add_argument("--baseline", default="benchmarks/results/baseline",
                   help="committed baseline store directory")
    p.add_argument("--window", type=int, default=5,
                   help="baseline rolling window (last N records)")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--buckets", type=int, default=8)
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection seed for the recovery phase")
    p.add_argument("--source", default="cli",
                   help="source tag stored in the record")
    p.add_argument("--tolerance", action="append", default=[],
                   metavar="PATTERN=TOL",
                   help="per-metric tolerance override (repeatable), e.g. "
                        "--tolerance 'sched.*=0.10'")
    p.add_argument("--perturb", action="append", default=[],
                   metavar="OP=FACTOR",
                   help="multiply a cost-model op rate (repeatable), e.g. "
                        "--perturb topo.subtree=1.5 — demonstrates the "
                        "gate tripping")
    p.add_argument("--html", default=None,
                   help="dashboard path (default: "
                        "<out-dir>/perf_dashboard.html)")

    p = sub.add_parser("serve", help="drain a multi-tenant campaign batch "
                                     "through the service layer")
    p.add_argument("--jobs", required=True,
                   help="JSONL batch file (one job spec per line; "
                        '{"quota": {...}} lines set tenant quotas)')
    p.add_argument("--workers", type=int, default=2,
                   help="DES worker pool size (default: 2)")
    p.add_argument("--quota", action="append", default=[],
                   metavar="TENANT=N",
                   help="max concurrent jobs for a tenant (repeatable); "
                        "overrides quota lines in the batch file")
    p.add_argument("--default-quota", type=int, default=2,
                   help="max concurrent jobs for tenants without an "
                        "explicit quota (default: 2)")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--state-dir", default=None,
                   help="service state directory holding the schedule "
                        "cache and job records "
                        "(default: <out-dir>/service)")
    p.add_argument("--report", default=None,
                   help="batch report JSON path "
                        "(default: <out-dir>/service_report.json)")
    p.add_argument("--min-cache-hit-rate", type=float, default=None,
                   metavar="RATE",
                   help="exit 1 if the batch cache hit rate is below RATE "
                        "(e.g. 1.0 for a warm resubmission)")
    p.add_argument("--expect-quota-held", action="store_true",
                   help="exit 1 unless admission control held at least "
                        "one job (quota-enforcement smoke check)")

    p = sub.add_parser("top", help="live view of a draining campaign batch "
                                   "(telemetry bus + burn-rate alerts)")
    p.add_argument("--jobs", required=True,
                   help="JSONL batch file (one job spec per line; "
                        '{"quota": {...}} lines set tenant quotas)')
    p.add_argument("--workers", type=int, default=2,
                   help="DES worker pool size (default: 2)")
    p.add_argument("--quota", action="append", default=[],
                   metavar="TENANT=N",
                   help="max concurrent jobs for a tenant (repeatable)")
    p.add_argument("--default-quota", type=int, default=2,
                   help="max concurrent jobs for tenants without an "
                        "explicit quota (default: 2)")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--state-dir", default=None,
                   help="persist the schedule cache here (default: "
                        "in-memory, so same-seed reruns replay "
                        "identically)")
    p.add_argument("--follow", action="store_true",
                   help="stream while the batch drains (frames, or "
                        "events with --jsonl) instead of only the final "
                        "state")
    p.add_argument("--jsonl", action="store_true",
                   help="emit bus events as JSON lines (one per event) "
                        "plus a final summary line, for collectors")
    p.add_argument("--once", action="store_true",
                   help="do not pace frames against the wall clock "
                        "(CI/smoke mode: drain at machine speed)")
    p.add_argument("--refresh", type=float, default=1.0,
                   help="wall seconds between frames with --follow "
                        "(default: 1.0)")
    p.add_argument("--slice", type=float, default=60.0,
                   help="service-clock seconds advanced per frame "
                        "(default: 60)")
    p.add_argument("--out", default=None,
                   help="also tee the event stream to this JSONL file "
                        "(relative paths land under --out-dir)")
    p.add_argument("--capacity", type=int, default=65536,
                   help="telemetry-bus ring capacity (default: 65536)")
    p.add_argument("--probe-interval", type=float, default=5.0,
                   help="probe sampling period inside each replay, in "
                        "simulated seconds (default: 5)")
    p.add_argument("--queue-wait-slo", type=float, default=90.0,
                   help="queue-wait SLO target in service seconds "
                        "(default: 90)")
    p.add_argument("--slowdown-slo", type=float, default=3.5,
                   help="makespan-slowdown SLO target vs pure simulation "
                        "time (default: 3.5)")
    p.add_argument("--expect-alerts", action="append", default=[],
                   metavar="TENANT",
                   help="exit 1 unless this tenant raised >= 1 burn-rate "
                        "alert (repeatable; smoke-test gate)")
    p.add_argument("--expect-clean", action="append", default=[],
                   metavar="TENANT",
                   help="exit 1 if this tenant raised any alert "
                        "(repeatable; smoke-test gate)")

    p = sub.add_parser("submit", help="append one job to a JSONL batch file")
    p.add_argument("--jobs", required=True,
                   help="JSONL batch file to append to (created if missing)")
    p.add_argument("--tenant", required=True)
    p.add_argument("--name", required=True, help="job name (for reports)")
    p.add_argument("--config", default="paper_4896",
                   choices=("paper_4896", "paper_9440"),
                   help="machine allocation to replay (Table I column)")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--buckets", type=int, default=8)
    p.add_argument("--interval", type=int, default=1,
                   help="analysis interval (steps between analysed steps)")
    p.add_argument("--analyses", nargs="+", default=None,
                   metavar="VARIANT",
                   help="analytics variants (default: the three hybrid "
                        "variants)")
    p.add_argument("--shards", type=int, default=1,
                   help="DataSpaces shards for this job's staging area")
    p.add_argument("--submit-at", type=float, default=0.0,
                   help="service-clock submission time (default: 0)")
    p.add_argument("--lease-timeout", type=float, default=None,
                   help="scheduler lease timeout for the replay "
                        "(required with --crash-times)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for this job's fault-injection plan")
    p.add_argument("--crash-times", type=float, nargs="*", default=[],
                   help="bucket crash instants in the replay "
                        "(simulated seconds)")
    p.add_argument("--pull-failure-rate", type=float, default=0.0,
                   help="probability one RDMA pull attempt fails")
    p.add_argument("--stall-rate", type=float, default=0.0,
                   help="probability one RDMA pull attempt stalls")
    p.add_argument("--stall-seconds", type=float, default=0.0,
                   help="wire seconds each stalled pull loses")

    p = sub.add_parser("jobs", help="list completed service job records")
    p.add_argument("--out-dir", default="repro_out",
                   help="artifact directory (default: repro_out/)")
    p.add_argument("--state-dir", default=None,
                   help="service state directory "
                        "(default: <out-dir>/service)")
    p.add_argument("--tenant", default=None,
                   help="only this tenant's jobs")
    p.add_argument("--limit", type=int, default=0,
                   help="only the last N records (0 = all)")
    return parser


_COMMANDS = {
    "tables": _cmd_tables,
    "simulate": _cmd_simulate,
    "track": _cmd_track,
    "render": _cmd_render,
    "tradeoff": _cmd_tradeoff,
    "schedule": _cmd_schedule,
    "trace": _cmd_trace,
    "blame": _cmd_blame,
    "faults": _cmd_faults,
    "control": _cmd_control,
    "capacity": _cmd_capacity,
    "perf": _cmd_perf,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend:
        from repro.backend import set_backend

        set_backend(args.backend)
    try:
        return _COMMANDS[args.command](args)
    finally:
        if args.backend:
            set_backend(None)


if __name__ == "__main__":
    sys.exit(main())
