"""Jaguar XK6 calibration, fitted once from Tables I and II of the paper.

Each rate below is derived from a single published measurement; derivations
are inline so every constant is auditable. The reproduction's *outputs* are
then produced by replaying the full workflow through the DES — who waits on
whom, what is asynchronous, how buckets multiplex — not by echoing the
table.

Per-rank workload at 4896 cores (4480 simulation ranks):
  block = 100 x 49 x 43 = 210,700 cells;  14 variables (8-byte doubles).
"""

from __future__ import annotations

from repro.costmodel.models import CostModel

#: Cells per simulation rank in the 4896-core configuration.
_BLOCK_CELLS_4896 = 100 * 49 * 43  # 210,700

JAGUAR_RATES: dict[str, float] = {
    # S3D advances one time step in 16.85 s on 4480 ranks (Table I):
    # 16.85 / 210700 cells  ->  8.00e-5 s per cell per step.
    # Cross-check: at 9440 cores the block halves (50 x 49 x 43 = 105,350
    # cells) giving 105350 * 8.0e-5 = 8.43 s vs 8.42 s reported.
    "s3d.step": 16.85 / _BLOCK_CELLS_4896,

    # In-situ full-resolution volume rendering: 0.73 s per step (Table II)
    # over the local 210,700-cell block -> 3.46e-6 s/cell.
    "vis.render_insitu": 0.73 / _BLOCK_CELLS_4896,

    # In-situ descriptive statistics (learn+derive, all-to-all variant):
    # 1.64 s over 14 variables x 210,700 cells = 2.9498e6 element-updates.
    "stats.learn": 1.64 / (14 * _BLOCK_CELLS_4896),

    # Hybrid stats learn-only is reported separately at 1.69 s; the extra
    # 0.05 s is partial-model serialization, charged as a separate op over
    # the 14 per-variable partials.
    "stats.pack_partial": 0.05 / 14,

    # In-transit derive on the aggregated global model: 0.01 s for 14
    # variables (serial) -> 7.1e-4 s per variable model.
    "stats.derive": 0.01 / 14,

    # In-situ down-sampling for the hybrid renderer: 0.08 s per step.
    # Strided reads touch every input cell of the rendered variables
    # (2 x 210,700) -> 1.9e-7 s per input cell.
    "vis.downsample": 0.08 / (2 * _BLOCK_CELLS_4896),

    # In-transit serial ray cast of the down-sampled volume: 5.06 s for
    # ~6.15e6 down-sampled cells (49.19 MB / 8 B) -> 8.2e-7 s per cell.
    "vis.render_intransit": 5.06 / (49.19e6 / 8.0),

    # In-situ merge-tree subtree construction (sort + union-find):
    # 2.72 s per 210,700-cell block -> 1.29e-5 s per cell.
    "topo.subtree": 2.72 / _BLOCK_CELLS_4896,

    # In-transit streaming glue of all subtrees into the global tree:
    # 119.81 s for 87.02 MB of subtree elements. At ~24 B per streamed
    # vertex/edge record that is ~3.63e6 elements -> 3.3e-5 s per element.
    "topo.stream_glue": 119.81 / (87.02e6 / 24.0),

    # DataSpaces bookkeeping per scheduled task (descriptor insert, queue
    # pop, bucket assignment) — SMSG-scale, dominated by RPC handling.
    "staging.task_overhead": 2.0e-5,

    # Subtree serialization/deserialization charged to data movement:
    # topology's 87.02 MB moves in 2.06 s (Table II) — far below wire
    # bandwidth — because packing pointer-rich tree structures dominates.
    # 2.06 s minus per-task RPC overhead (4480 x ~30 us) and wire time
    # (~15 ms) leaves ~1.91 s over ~3.63e6 elements.
    "topo.pack_stream": 5.27e-7,
}

JAGUAR_OVERHEADS: dict[str, float] = {
    # Fixed per-image setup for the serial in-transit renderer (LUT build).
    "vis.render_intransit": 0.05,
}


def jaguar_cost_model() -> CostModel:
    """Cost model calibrated to the paper's Jaguar XK6 measurements."""
    return CostModel("Jaguar-XK6", dict(JAGUAR_RATES), dict(JAGUAR_OVERHEADS))
