"""Cost model core: named per-element rates plus fixed overheads.

Every modeled operation is ``time = overhead + n_elements * rate``. The
linear form is deliberate: all of the paper's kernels (S3D RHS evaluation,
ray casting, moment updates, subtree construction, streaming glue) are
linear in elements processed at fixed per-element work, and Table II
reports exactly one point per kernel, which pins the rate once the
overhead is taken as negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OpDescriptor:
    """What an operation did, machine-independently."""

    op: str
    n_elements: int
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.n_elements < 0:
            raise ValueError(f"n_elements must be >= 0, got {self.n_elements}")
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")


@dataclass
class CostModel:
    """Maps operation names to ``(rate_per_element, fixed_overhead)``."""

    name: str
    rates: dict[str, float]
    overheads: dict[str, float] = field(default_factory=dict)

    def has_op(self, op: str) -> bool:
        return op in self.rates

    def rate(self, op: str) -> float:
        try:
            return self.rates[op]
        except KeyError:
            raise KeyError(
                f"cost model {self.name!r} has no rate for operation {op!r}; "
                f"known: {sorted(self.rates)}"
            ) from None

    def time(self, op: str, n_elements: int) -> float:
        """Seconds for ``op`` over ``n_elements`` elements."""
        if n_elements < 0:
            raise ValueError(f"n_elements must be >= 0, got {n_elements}")
        return self.overheads.get(op, 0.0) + n_elements * self.rate(op)

    def time_of(self, desc: OpDescriptor) -> float:
        return self.time(desc.op, desc.n_elements)

    def with_rate(self, op: str, rate: float, overhead: float = 0.0) -> "CostModel":
        """Copy with one rate replaced/added (used by ablations)."""
        rates = dict(self.rates)
        rates[op] = rate
        overheads = dict(self.overheads)
        if overhead:
            overheads[op] = overhead
        return CostModel(self.name, rates, overheads)
