"""Measure per-element rates of the real implementations.

Users running on their own hardware can calibrate a
:class:`~repro.costmodel.models.CostModel` from the actual Python kernels:
time a kernel at several sizes and fit ``time = overhead + rate * n``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np


def calibrate_rate(kernel: Callable[[int], None], n_elements: int,
                   repeats: int = 3) -> float:
    """Per-element seconds of ``kernel(n_elements)``, best of ``repeats``."""
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel(n_elements)
        best = min(best, time.perf_counter() - t0)
    return best / n_elements


def fit_linear_rate(sizes: Sequence[int], times: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``time = overhead + rate * n``.

    Returns ``(rate, overhead)``; overhead is clamped at zero (a negative
    intercept is measurement noise, not a real credit).
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a line")
    n = np.asarray(sizes, dtype=np.float64)
    t = np.asarray(times, dtype=np.float64)
    rate, overhead = np.polyfit(n, t, 1)
    if rate < 0:
        raise ValueError(
            f"fitted negative rate {rate:.3g}; timings are not linear in size"
        )
    return float(rate), float(max(overhead, 0.0))
