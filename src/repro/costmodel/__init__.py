"""Calibrated per-operation cost models.

The functional layer executes real algorithms on laptop-scale data; this
package converts *operation descriptors* (elements touched, bytes moved)
into seconds on a named machine, so the DES can replay the paper's
full-scale runs. See DESIGN.md §4 and :mod:`repro.costmodel.jaguar` for the
calibration provenance.
"""

from repro.costmodel.models import CostModel, OpDescriptor
from repro.costmodel.jaguar import jaguar_cost_model, JAGUAR_RATES
from repro.costmodel.calibration import calibrate_rate, fit_linear_rate

__all__ = [
    "CostModel",
    "OpDescriptor",
    "jaguar_cost_model",
    "JAGUAR_RATES",
    "calibrate_rate",
    "fit_linear_rate",
]
