"""DART-like asynchronous transport substrate (paper §IV, comm layer).

Reproduces the structure of DART on Cray Gemini:

* *registration* of RDMA-enabled memory regions holding in-situ results
  (:class:`~repro.transport.rdma.RdmaRegion`);
* *short messages* (SMSG/FMA) for event notification — data-ready and
  bucket-ready RPCs;
* *block transfers* (BTE RDMA Get) for asynchronous pulls of registered
  regions by in-transit buckets, with completion events delivered at both
  endpoints;
* dynamic protocol selection by message size
  (:meth:`repro.machine.gemini.GeminiNetwork.select_protocol`).

Payloads are real Python/NumPy objects; transfer *times* come from the
network model and play out on the DES engine, with per-node NIC
serialisation so concurrent pulls into one staging node queue realistically.
"""

from repro.transport.messages import DataDescriptor, TransferRecord
from repro.transport.rdma import RdmaRegion, RdmaRegistry
from repro.transport.dart import DartTransport, PullFault

__all__ = [
    "DataDescriptor",
    "TransferRecord",
    "RdmaRegion",
    "RdmaRegistry",
    "DartTransport",
    "PullFault",
]
