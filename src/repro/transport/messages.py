"""Descriptors and transfer records exchanged through the transport layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.gemini import Protocol


@dataclass(frozen=True)
class DataDescriptor:
    """Handle to an RDMA-registered data region.

    This is what in-situ ranks insert into DataSpaces on a *data-ready*
    event: enough information for any staging bucket to pull the payload
    directly from the producer's memory.
    """

    region_id: str
    source_node: str
    nbytes: int
    #: Free-form metadata: analysis name, timestep, rank, variable, ...
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if not self.region_id:
            raise ValueError("region_id must be non-empty")

    def descriptor_bytes(self) -> int:
        """Wire size of the descriptor itself (an SMSG-scale RPC payload)."""
        return 128 + 32 * len(self.meta)


@dataclass
class TransferRecord:
    """Completed transfer, for tracing and the benchmark harness."""

    region_id: str
    source_node: str
    dest_node: str
    nbytes: int
    protocol: Protocol
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time
