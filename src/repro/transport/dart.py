"""DART: asynchronous data transport over the DES engine.

Maps the paper's description (§IV, *Communication and Data Movement Layer*)
onto simulated machinery:

* ``notify`` — SMSG/FMA short message carrying an RPC or descriptor;
  delivered after the small-message latency, no NIC occupancy modeled
  (OS-bypass, fire-and-forget);
* ``pull`` — BTE RDMA Get: the destination posts a get, both endpoints'
  NICs are occupied for the wire time, and completion events fire at source
  and destination (DART uses these to schedule follow-on analysis).

Every completed transfer is appended to ``transfers`` for tracing.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.des import Engine, EventHandle, Resource
from repro.machine.gemini import GeminiNetwork
from repro.obs.flow import EDGE_GRANT, EDGE_RETRY, FlowContext
from repro.obs.tracer import get_tracer
from repro.transport.messages import DataDescriptor, TransferRecord
from repro.transport.rdma import RdmaRegion, RdmaRegistry


class PullFault(Exception):
    """A transient RDMA Get failure (NIC error, staging-node hiccup).

    Raised by the pull fault hook; :meth:`DartTransport.pull` retries with
    exponential backoff up to ``pull_max_attempts`` before re-raising.
    """


class DartTransport:
    """Asynchronous transport between named nodes on one DES engine."""

    def __init__(self, engine: Engine, network: GeminiNetwork | None = None,
                 nic_channels: int = 1, pull_max_attempts: int = 1,
                 pull_backoff_base: float = 1.0e-4,
                 pull_backoff_factor: float = 2.0) -> None:
        if pull_max_attempts < 1:
            raise ValueError(
                f"pull_max_attempts must be >= 1, got {pull_max_attempts}")
        self.engine = engine
        self.network = network or GeminiNetwork()
        self.registry = RdmaRegistry()
        self.transfers: list[TransferRecord] = []
        self._nic_channels = nic_channels
        self._nics: dict[str, Resource] = {}
        self._tracer = get_tracer()
        self.pull_max_attempts = pull_max_attempts
        self.pull_backoff_base = pull_backoff_base
        self.pull_backoff_factor = pull_backoff_factor
        #: Fault-injection hook called per pull attempt with
        #: ``(descriptor, dest_node, attempt)``; returns extra stall
        #: seconds (0.0 = none) or raises :class:`PullFault` to fail the
        #: attempt. Installed by :class:`repro.faults.FaultInjector`.
        self.pull_fault_hook: Callable[
            [DataDescriptor, str, int], float] | None = None
        #: Capacity ledger (:class:`repro.obs.capacity.CapacityLedger`)
        #: recording granted-bytes wire intervals, or None — the pull
        #: path pays one ``is None`` check without one.
        self.ledger: Any = None
        self.ledger_shard = "shard0"

    # -- registration ---------------------------------------------------------

    def register(self, source_node: str, payload: Any,
                 meta: dict[str, Any] | None = None,
                 nbytes: int | None = None) -> DataDescriptor:
        """Register a payload; returns the descriptor to advertise."""
        region = self.registry.register(source_node, payload, meta, nbytes)
        return DataDescriptor(region_id=region.region_id,
                              source_node=source_node,
                              nbytes=region.nbytes,
                              meta=region.meta)

    def release(self, descriptor: DataDescriptor) -> None:
        self.registry.release(descriptor.region_id)

    # -- short messages ---------------------------------------------------------

    def notify(self, dest_node: str, payload: Any, nbytes: int | None = None,
               on_delivery: Callable[[Any], None] | None = None) -> EventHandle:
        """Send an SMSG-scale message; event triggers with the payload on
        delivery at ``dest_node``."""
        size = nbytes if nbytes is not None else 256
        delay = self.network.transfer_time(size)
        if self._tracer.enabled:
            self._tracer.counter("dart.notify")
            self._tracer.counter("dart.notify_bytes", size)
            self._tracer.instant("dart.notify", lane=dest_node, nbytes=size)
        ev = self.engine.event()
        if on_delivery is not None:
            ev.callbacks.append(on_delivery)
        self.engine.schedule_event(ev, delay, payload)
        return ev

    # -- bulk pulls ---------------------------------------------------------------

    def _nic(self, node: str) -> Resource:
        if node not in self._nics:
            self._nics[node] = Resource(self.engine, self._nic_channels,
                                        name=f"nic:{node}")
        return self._nics[node]

    def nic_busy_channels(self) -> int:
        """NIC channels currently occupied by in-flight pulls, across all
        nodes (the live-probe utilisation gauge)."""
        return sum(nic.in_use for nic in self._nics.values())

    def pull(self, descriptor: DataDescriptor, dest_node: str,
             release: bool = True, flow: FlowContext | None = None
             ) -> Generator[Any, Any, Any]:
        """DES process: RDMA-Get the region into ``dest_node``.

        Usage inside a process::

            payload = yield from transport.pull(desc, "staging-3")

        Occupies both endpoints' NICs for the wire time; appends a
        :class:`TransferRecord`; optionally releases the region (the
        common case — the producer's scratch buffer is freed as soon as
        the staging area holds the data).

        Transient :class:`PullFault` attempts (raised by the fault hook)
        are retried with exponential backoff up to ``pull_max_attempts``;
        the last failure re-raises to the caller. Lookup errors (pulling a
        released or unknown region) are permanent and never retried.

        ``flow`` (a causal flow context, or None) collects the pull's
        hand-off edges: a *retry* hop after each failed attempt's backoff
        and a *grant* hop binding the wire-time span, so NIC queueing and
        retry cost are attributable per flow.
        """
        attempt = 1
        while True:
            try:
                payload = yield from self._pull_attempt(descriptor, dest_node,
                                                        attempt, flow)
                break
            except PullFault:
                if self._tracer.enabled:
                    self._tracer.counter("dart.pull_faults")
                if attempt >= self.pull_max_attempts:
                    if self._tracer.enabled:
                        self._tracer.counter("dart.pull_exhausted")
                        self._tracer.instant("dart.pull_exhausted",
                                             lane=dest_node,
                                             region=descriptor.region_id,
                                             attempts=attempt)
                    raise
                delay = (self.pull_backoff_base
                         * self.pull_backoff_factor ** (attempt - 1))
                if self._tracer.enabled:
                    self._tracer.counter("dart.pull_retries")
                    self._tracer.instant("dart.pull_retry", lane=dest_node,
                                         region=descriptor.region_id,
                                         attempt=attempt, backoff=delay)
                yield self.engine.timeout(delay)
                if flow is not None:
                    # The segment since the previous hop is the failed
                    # attempt plus its backoff — charged to retry.
                    self._tracer.flow_step(flow, EDGE_RETRY, dest_node,
                                           region=descriptor.region_id,
                                           attempt=attempt, backoff=delay)
                attempt += 1
        if release:
            self.registry.release(descriptor.region_id)
        return payload

    def _pull_attempt(self, descriptor: DataDescriptor, dest_node: str,
                      attempt: int, flow: FlowContext | None = None
                      ) -> Generator[Any, Any, Any]:
        """One RDMA-Get attempt (no release; see :meth:`pull`)."""
        region: RdmaRegion = self.registry.lookup(descriptor.region_id)
        stall = 0.0
        if self.pull_fault_hook is not None:
            stall = self.pull_fault_hook(descriptor, dest_node, attempt)
        protocol = self.network.select_protocol(region.nbytes)
        start = self.engine.now

        src_nic = self._nic(region.source_node)
        dst_nic = self._nic(dest_node)
        # Acquire destination first (the puller posts the Get), then source.
        # Withdraw a pending request if the puller dies while queueing — a
        # crashed bucket must not leak NIC capacity.
        tracer = self._tracer
        dst_grant = dst_nic.acquire()
        try:
            yield dst_grant
        except BaseException:
            dst_nic.cancel(dst_grant)
            raise
        try:
            src_grant = src_nic.acquire()
            try:
                yield src_grant
            except BaseException:
                src_nic.cancel(src_grant)
                raise
            try:
                wire = self.network.transfer_time(region.nbytes, protocol) + stall
                if stall and tracer.enabled:
                    tracer.counter("dart.pull_stalls")
                    tracer.counter("dart.pull_stall_seconds", stall)
                if tracer.enabled:
                    # The span covers only the wire time (NIC waits show up
                    # as gaps); tagged for per-analysis stage totals.
                    tags = {}
                    if "analysis" in region.meta:
                        tags["analysis"] = region.meta["analysis"]
                    if "timestep" in region.meta:
                        tags["step"] = region.meta["timestep"]
                    with tracer.span("rdma.pull", lane=dest_node,
                                     category="transfer", stage="movement",
                                     protocol=protocol, nbytes=region.nbytes,
                                     src=region.source_node, **tags) as sp:
                        if flow is not None:
                            # Gap since the previous hop is NIC queueing
                            # (both endpoints' channel grants).
                            tracer.flow_through(flow, EDGE_GRANT, sp,
                                                region=region.region_id)
                        yield self.engine.timeout(wire)
                    proto_name = getattr(protocol, "name", str(protocol))
                    tracer.counter(f"dart.pull.{proto_name.lower()}")
                    tracer.counter("dart.bytes_pulled", region.nbytes)
                    tracer.metrics.histogram("dart.pull_bytes").observe(
                        region.nbytes)
                else:
                    yield self.engine.timeout(wire)
            finally:
                src_nic.release()
        finally:
            dst_nic.release()

        if self.ledger is not None:
            # The granted-bytes interval is the wire time only — NIC
            # channel queueing shows up as idle, not occupancy.
            end = self.engine.now
            proto_name = getattr(protocol, "name", str(protocol))
            self.ledger.on_transfer(end - wire, end, region.nbytes,
                                    proto_name, region.source_node,
                                    dest_node, self.ledger_shard,
                                    analysis=region.meta.get("analysis"))

        record = TransferRecord(
            region_id=region.region_id,
            source_node=region.source_node,
            dest_node=dest_node,
            nbytes=region.nbytes,
            protocol=protocol,
            start_time=start,
            end_time=self.engine.now,
        )
        self.transfers.append(record)
        region.pull_count += 1
        return region.payload

    # -- tracing -------------------------------------------------------------------

    def bytes_moved(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def busy_time(self, node: str) -> float:
        """Total wire time in which ``node`` was an endpoint."""
        return sum(t.duration for t in self.transfers
                   if node in (t.source_node, t.dest_node))
