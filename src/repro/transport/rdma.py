"""Registered memory regions: the "pinned buffers" in-situ ranks expose.

An :class:`RdmaRegion` pairs a real payload (any Python object; NumPy
arrays report true byte sizes) with the registration bookkeeping DART
performs. The :class:`RdmaRegistry` is the per-run table of currently
registered regions; pulling an unregistered or already-released region is
an error, mirroring real one-sided-communication hazards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import get_tracer
from repro.vmpi.comm import payload_bytes


@dataclass
class RdmaRegion:
    """One registered region with its live payload."""

    region_id: str
    source_node: str
    payload: Any
    nbytes: int
    released: bool = False
    pull_count: int = 0
    meta: dict[str, Any] = field(default_factory=dict)


class RdmaRegistry:
    """Table of registered regions, keyed by region id."""

    def __init__(self) -> None:
        self._regions: dict[str, RdmaRegion] = {}
        self._ids = itertools.count()
        self._tracer = get_tracer()
        self._live_bytes = 0
        #: Capacity ledger (:class:`repro.obs.capacity.CapacityLedger`)
        #: observing this registry, or None — register/release pay one
        #: ``is None`` check when no ledger is attached.
        self.ledger: Any = None
        self.ledger_shard = "shard0"

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, region_id: str) -> bool:
        return region_id in self._regions

    def register(self, source_node: str, payload: Any,
                 meta: dict[str, Any] | None = None,
                 nbytes: int | None = None) -> RdmaRegion:
        """Register ``payload`` for remote pulls; returns the region.

        ``nbytes`` overrides the measured payload size when the in-memory
        object is a scaled-down stand-in for a full-scale buffer (the DES
        charges the full-scale size while the functional layer carries the
        small one).
        """
        region_id = f"{source_node}/region-{next(self._ids)}"
        size = payload_bytes(payload) if nbytes is None else nbytes
        if size < 0:
            raise ValueError(f"nbytes must be >= 0, got {size}")
        region = RdmaRegion(region_id=region_id, source_node=source_node,
                            payload=payload, nbytes=size, meta=dict(meta or {}))
        self._regions[region_id] = region
        self._live_bytes += size
        if self._tracer.enabled:
            self._tracer.counter("rdma.register")
            self._tracer.counter("rdma.registered_bytes", size)
            self._tracer.metrics.gauge("rdma.live_bytes").set(self._live_bytes)
        if self.ledger is not None:
            self.ledger.on_register(region, self.ledger_shard)
        return region

    def lookup(self, region_id: str) -> RdmaRegion:
        try:
            region = self._regions[region_id]
        except KeyError:
            raise KeyError(f"region {region_id!r} is not registered") from None
        if region.released:
            raise RuntimeError(f"region {region_id!r} was already released")
        return region

    def release(self, region_id: str) -> None:
        """Unregister a region, freeing the producer's pinned memory."""
        region = self.lookup(region_id)
        region.released = True
        del self._regions[region_id]
        self._live_bytes -= region.nbytes
        if self._tracer.enabled:
            self._tracer.counter("rdma.release")
            self._tracer.metrics.gauge("rdma.live_bytes").set(self._live_bytes)
        if self.ledger is not None:
            self.ledger.on_release(region, self.ledger_shard)

    def region_ids(self) -> list[str]:
        """Ids of every currently registered region (leak-scan surface)."""
        return list(self._regions)

    def live_bytes(self, source_node: str | None = None) -> int:
        """Total registered bytes (optionally for one node) — the in-situ
        scratch-memory footprint the paper's §III constraints bound."""
        return sum(r.nbytes for r in self._regions.values()
                   if source_node is None or r.source_node == source_node)
