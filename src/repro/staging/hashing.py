"""DHT-style key hashing over DataSpaces service cores.

The paper attributes the scheduler's scalability to "the hashing used to
balance the RPC messages over multiple DataSpaces servers". This module
provides that mapping: a stable hash ring assigning keys to service cores,
so RPC load spreads evenly and the assignment is independent of insertion
order.
"""

from __future__ import annotations

import hashlib


def _stable_hash(key: str) -> int:
    """64-bit stable hash (Python's builtin ``hash`` is salted per process)."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(),
                          "big")


class ServiceRing:
    """Consistent-hash ring over ``n_servers`` service cores.

    Virtual nodes smooth the distribution; ``server_for`` is O(log V).
    """

    def __init__(self, n_servers: int, virtual_nodes: int = 64) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.n_servers = n_servers
        self.virtual_nodes = virtual_nodes
        points: list[tuple[int, int]] = []
        for server in range(n_servers):
            for v in range(virtual_nodes):
                points.append((_stable_hash(f"server-{server}#vn{v}"), server))
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_servers = [p[1] for p in points]

    def server_for(self, key: str) -> int:
        """Service core responsible for ``key``."""
        h = _stable_hash(key)
        # Binary search for the first ring point >= h (wrap to 0).
        lo, hi = 0, len(self._ring_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring_keys[mid] < h:
                lo = mid + 1
            else:
                hi = mid
        idx = lo % len(self._ring_keys)
        return self._ring_servers[idx]

    def load_histogram(self, keys: list[str]) -> list[int]:
        """Number of keys landing on each server (for balance tests)."""
        counts = [0] * self.n_servers
        for k in keys:
            counts[self.server_for(k)] += 1
        return counts

    def imbalance(self, keys: list[str]) -> float:
        """Max-over-mean load ratio for ``keys`` (1.0 = perfectly even).

        The service layer's shard-balance report uses this figure: with
        enough virtual nodes the ratio stays bounded (a few tens of
        percent), which is what makes DHT routing a load balancer and not
        just a partitioner.
        """
        if not keys:
            return 1.0
        counts = self.load_histogram(keys)
        mean = len(keys) / self.n_servers
        return max(counts) / mean

    def moved_fraction(self, keys: list[str], other: "ServiceRing") -> float:
        """Fraction of ``keys`` whose assignment differs under ``other``.

        Consistent hashing's scaling contract: growing an *N*-shard ring
        to *N+1* (or shrinking to *N-1*) relocates only ~1/(N+1) (resp.
        ~1/N) of the keys, because virtual-node points are hashed per
        server and survive resizing unchanged.
        """
        if not keys:
            return 0.0
        moved = sum(1 for k in keys if self.server_for(k) != other.server_for(k))
        return moved / len(keys)
