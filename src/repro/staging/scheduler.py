"""Pull-based FCFS task scheduler (paper §IV, *Scheduling and Coordination*).

Two event kinds drive scheduling, exactly as in Fig. 5:

* **data-ready** — an in-situ computation inserts a task descriptor; if a
  bucket is waiting it is assigned immediately, otherwise the task joins
  the FIFO task queue;
* **bucket-ready** — a staging bucket announces availability; if a task is
  queued it is assigned immediately, otherwise the bucket joins the FIFO
  free-bucket list.

Assignments are recorded for the Fig.-5 validation benchmark.

Fault tolerance (lease-based recovery): when the scheduler is built with a
``lease_timeout``, every assignment carries a lease. A healthy bucket
implicitly renews it; if the bucket is marked dead (crash detected by the
fault layer) the lease expires and the task is requeued FCFS onto a
surviving bucket. Buckets acknowledge completion/terminal failure/retry
via :meth:`TaskScheduler.task_done`, which revokes the live lease.
"""

from __future__ import annotations

from collections.abc import Callable
from collections import deque
from dataclasses import dataclass

from repro.des import Engine, EventHandle
from repro.obs.flow import EDGE_NOTIFY, EDGE_QUEUE, EDGE_RETRY
from repro.obs.tracer import get_tracer
from repro.staging.descriptors import (SHUTDOWN_TASK_ID, TaskDescriptor,
                                       retire_sentinel)


@dataclass
class ReassignmentRecord:
    """One lease-expiry recovery: a task pulled back from a dead bucket."""

    task_id: str
    dead_bucket: str
    assign_time: float
    requeue_time: float


@dataclass
class AssignmentRecord:
    """One task-to-bucket assignment, for event-trace validation."""

    task_id: str
    bucket: str
    data_ready_time: float
    bucket_ready_time: float
    assign_time: float


class TaskScheduler:
    """FCFS matching of tasks to buckets over the DES engine."""

    def __init__(self, engine: Engine,
                 lease_timeout: float | None = None,
                 lane: str = "scheduler") -> None:
        if lease_timeout is not None and lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0 or None, got {lease_timeout}")
        self.engine = engine
        self.lease_timeout = lease_timeout
        #: Trace lane for this scheduler's instants and flow hops. Sharded
        #: staging (one scheduler per shard) sets a distinct lane per
        #: shard so their event streams stay separable in exports.
        self.lane = lane
        self._task_queue: deque[tuple[TaskDescriptor, float]] = deque()
        self._free_buckets: deque[tuple[str, EventHandle, float]] = deque()
        self.assignments: list[AssignmentRecord] = []
        #: Lease-expiry recoveries, in requeue order.
        self.reassignments: list[ReassignmentRecord] = []
        #: (time, queue length) samples taken at every scheduling event.
        self.queue_trace: list[tuple[float, int]] = []
        self._leases: dict[str, EventHandle] = {}
        self._dead_buckets: set[str] = set()
        #: Buckets with a pending scale-down retirement: each receives a
        #: retire sentinel at its next bucket-ready announcement instead
        #: of a task (see :meth:`retire_bucket`).
        self._retiring: set[str] = set()
        #: Degraded-mode redirect: when set, data-ready tasks bypass the
        #: queue and are handed to this callable (the staging area is gone
        #: and DataSpaces runs tasks in-situ instead).
        self.task_sink: Callable[[TaskDescriptor], None] | None = None
        self._tracer = get_tracer()

    # -- events -------------------------------------------------------------

    def data_ready(self, task: TaskDescriptor) -> None:
        """An in-situ stage published a task (descriptor insert RPC)."""
        now = self.engine.now
        if self._tracer.enabled:
            self._tracer.counter("sched.data_ready")
            self._tracer.instant("sched.data_ready", lane=self.lane,
                                 task_id=task.task_id, analysis=task.analysis,
                                 step=task.timestep)
        if task.flow is not None:
            # A re-submitted task arrives via a retry, not a fresh notify.
            self._tracer.flow_step(task.flow,
                                   EDGE_RETRY if task.attempts else EDGE_NOTIFY,
                                   self.lane, t=now)
        if self.task_sink is not None:
            self.task_sink(task)
            self._sample()
            return
        while self._free_buckets:
            bucket, ev, ready_t = self._free_buckets.popleft()
            if bucket in self._dead_buckets:
                continue  # drop the corpse's pending bucket-ready entry
            self._assign(task, now, bucket, ev, ready_t)
            break
        else:
            self._task_queue.append((task, now))
        self._sample()

    def bucket_ready(self, bucket: str) -> EventHandle:
        """A staging bucket announced availability; event triggers with its
        assigned :class:`TaskDescriptor`."""
        ev = self.engine.event()
        now = self.engine.now
        if self._tracer.enabled:
            self._tracer.counter("sched.bucket_ready")
            self._tracer.instant("sched.bucket_ready", lane=self.lane,
                                 bucket=bucket)
        if bucket in self._retiring:
            # Scale-down hand-off: the bucket just finished (and lease-
            # released) its previous task; it gets the retire sentinel
            # instead of new work.
            self._retiring.discard(bucket)
            self._retire(bucket, ev)
            return ev
        if self._task_queue:
            task, ready_t = self._task_queue.popleft()
            self._assign(task, ready_t, bucket, ev, now)
        else:
            self._free_buckets.append((bucket, ev, now))
        self._sample()
        return ev

    def _assign(self, task: TaskDescriptor, data_t: float,
                bucket: str, ev: EventHandle, bucket_t: float) -> None:
        self.assignments.append(AssignmentRecord(
            task_id=task.task_id, bucket=bucket,
            data_ready_time=data_t, bucket_ready_time=bucket_t,
            assign_time=self.engine.now,
        ))
        if self._tracer.enabled:
            self._tracer.counter("sched.assign")
            self._tracer.instant("sched.assign", lane=self.lane,
                                 task_id=task.task_id, bucket=bucket,
                                 queue_wait=self.engine.now - data_t)
            self._tracer.metrics.histogram("sched.queue_wait").observe(
                self.engine.now - data_t)
        if task.flow is not None:
            self._tracer.flow_step(task.flow, EDGE_QUEUE, self.lane,
                                   bucket=bucket)
        ev.succeed(task)
        if (self.lease_timeout is not None
                and task.task_id != SHUTDOWN_TASK_ID):
            self._start_lease(task, bucket)

    # -- leases ---------------------------------------------------------------

    def _start_lease(self, task: TaskDescriptor, bucket: str) -> None:
        assign_t = self.engine.now
        lease = self.engine.timeout(self.lease_timeout)
        self._leases[task.task_id] = lease

        def on_expiry(_value: object) -> None:
            if self._leases.get(task.task_id) is not lease:
                return  # superseded by a newer assignment
            del self._leases[task.task_id]
            if bucket in self._dead_buckets:
                self.reassignments.append(ReassignmentRecord(
                    task_id=task.task_id, dead_bucket=bucket,
                    assign_time=assign_t, requeue_time=self.engine.now))
                if self._tracer.enabled:
                    self._tracer.counter("sched.lease_reassign")
                    self._tracer.instant("sched.lease_reassign",
                                         lane=self.lane,
                                         task_id=task.task_id, bucket=bucket)
                    self._tracer.metrics.histogram(
                        "sched.lease_detect_delay").observe(
                        self.engine.now - assign_t)
                if task.flow is not None:
                    # The lease period burned on the dead bucket is a
                    # retry cost; the follow-on data_ready hop lands at
                    # the same instant and so charges nothing extra.
                    self._tracer.flow_step(task.flow, EDGE_RETRY,
                                           self.lane,
                                           reason="lease_expired",
                                           bucket=bucket)
                self.data_ready(task)
            else:
                # The holder is alive and still working — renew the lease,
                # modelling the keepalive a healthy bucket sends.
                self._start_lease(task, bucket)

        lease.callbacks.append(on_expiry)

    def retire_bucket(self, bucket: str) -> bool:
        """Request a scale-down retirement of ``bucket``.

        An idle bucket (parked in the free list) is retired immediately:
        its pending bucket-ready event succeeds with the retire sentinel.
        A busy bucket is marked; it finishes its current task normally
        (the lease is handed back through the usual ``task_done`` path)
        and receives the sentinel at its next announcement. Returns True
        if the retirement was delivered immediately.
        """
        for i, (name, ev, _ready_t) in enumerate(self._free_buckets):
            if name == bucket:
                del self._free_buckets[i]
                self._retire(bucket, ev)
                return True
        self._retiring.add(bucket)
        return False

    def _retire(self, bucket: str, ev: EventHandle) -> None:
        if self._tracer.enabled:
            self._tracer.counter("sched.bucket_retired")
            self._tracer.instant("sched.bucket_retire", lane=self.lane,
                                 bucket=bucket)
        ev.succeed(retire_sentinel())
        self._sample()

    def task_done(self, task_id: str) -> None:
        """Acknowledge a task outcome (success, terminal failure, or a
        bucket-initiated retry requeue): revokes the live lease."""
        lease = self._leases.pop(task_id, None)
        if lease is not None:
            lease.cancel()

    def mark_bucket_dead(self, bucket: str) -> None:
        """Record a staging-core death; its free-list entry (if any) is
        skipped and any lease it holds will expire into a reassignment."""
        self._dead_buckets.add(bucket)
        if self._tracer.enabled:
            self._tracer.counter("sched.bucket_dead")
            self._tracer.instant("sched.bucket_dead", lane=self.lane,
                                 bucket=bucket)

    def steal_queue(self) -> list[TaskDescriptor]:
        """Drain and return every queued task (degraded-mode takeover)."""
        tasks = [task for task, _t in self._task_queue]
        self._task_queue.clear()
        self._sample()
        return tasks

    def _sample(self) -> None:
        self.queue_trace.append((self.engine.now, len(self._task_queue)))
        if self._tracer.enabled:
            self._tracer.metrics.gauge("sched.queue_depth").set(
                len(self._task_queue))
            self._tracer.metrics.gauge("sched.idle_buckets").set(
                len(self._free_buckets))

    # -- introspection --------------------------------------------------------

    @property
    def pending_tasks(self) -> int:
        return len(self._task_queue)

    @property
    def idle_buckets(self) -> int:
        return len(self._free_buckets)

    def max_queue_depth(self) -> int:
        return max((depth for _, depth in self.queue_trace), default=0)
