"""Pull-based FCFS task scheduler (paper §IV, *Scheduling and Coordination*).

Two event kinds drive scheduling, exactly as in Fig. 5:

* **data-ready** — an in-situ computation inserts a task descriptor; if a
  bucket is waiting it is assigned immediately, otherwise the task joins
  the FIFO task queue;
* **bucket-ready** — a staging bucket announces availability; if a task is
  queued it is assigned immediately, otherwise the bucket joins the FIFO
  free-bucket list.

Assignments are recorded for the Fig.-5 validation benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.des import Engine, EventHandle
from repro.obs.tracer import get_tracer
from repro.staging.descriptors import TaskDescriptor


@dataclass
class AssignmentRecord:
    """One task-to-bucket assignment, for event-trace validation."""

    task_id: str
    bucket: str
    data_ready_time: float
    bucket_ready_time: float
    assign_time: float


class TaskScheduler:
    """FCFS matching of tasks to buckets over the DES engine."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._task_queue: deque[tuple[TaskDescriptor, float]] = deque()
        self._free_buckets: deque[tuple[str, EventHandle, float]] = deque()
        self.assignments: list[AssignmentRecord] = []
        #: (time, queue length) samples taken at every scheduling event.
        self.queue_trace: list[tuple[float, int]] = []
        self._tracer = get_tracer()

    # -- events -------------------------------------------------------------

    def data_ready(self, task: TaskDescriptor) -> None:
        """An in-situ stage published a task (descriptor insert RPC)."""
        now = self.engine.now
        if self._tracer.enabled:
            self._tracer.counter("sched.data_ready")
            self._tracer.instant("sched.data_ready", lane="scheduler",
                                 task_id=task.task_id, analysis=task.analysis,
                                 step=task.timestep)
        if self._free_buckets:
            bucket, ev, ready_t = self._free_buckets.popleft()
            self._assign(task, now, bucket, ev, ready_t)
        else:
            self._task_queue.append((task, now))
        self._sample()

    def bucket_ready(self, bucket: str) -> EventHandle:
        """A staging bucket announced availability; event triggers with its
        assigned :class:`TaskDescriptor`."""
        ev = self.engine.event()
        now = self.engine.now
        if self._tracer.enabled:
            self._tracer.counter("sched.bucket_ready")
            self._tracer.instant("sched.bucket_ready", lane="scheduler",
                                 bucket=bucket)
        if self._task_queue:
            task, ready_t = self._task_queue.popleft()
            self._assign(task, ready_t, bucket, ev, now)
        else:
            self._free_buckets.append((bucket, ev, now))
        self._sample()
        return ev

    def _assign(self, task: TaskDescriptor, data_t: float,
                bucket: str, ev: EventHandle, bucket_t: float) -> None:
        self.assignments.append(AssignmentRecord(
            task_id=task.task_id, bucket=bucket,
            data_ready_time=data_t, bucket_ready_time=bucket_t,
            assign_time=self.engine.now,
        ))
        if self._tracer.enabled:
            self._tracer.counter("sched.assign")
            self._tracer.instant("sched.assign", lane="scheduler",
                                 task_id=task.task_id, bucket=bucket,
                                 queue_wait=self.engine.now - data_t)
            self._tracer.metrics.histogram("sched.queue_wait").observe(
                self.engine.now - data_t)
        ev.succeed(task)

    def _sample(self) -> None:
        self.queue_trace.append((self.engine.now, len(self._task_queue)))
        if self._tracer.enabled:
            self._tracer.metrics.gauge("sched.queue_depth").set(
                len(self._task_queue))
            self._tracer.metrics.gauge("sched.idle_buckets").set(
                len(self._free_buckets))

    # -- introspection --------------------------------------------------------

    @property
    def pending_tasks(self) -> int:
        return len(self._task_queue)

    @property
    def idle_buckets(self) -> int:
        return len(self._free_buckets)

    def max_queue_depth(self) -> int:
        return max((depth for _, depth in self.queue_trace), default=0)
