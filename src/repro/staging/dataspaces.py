"""The DataSpaces shared-space service.

Implements the "scalable, semantically specialized shared space
abstraction" of §IV: versioned, geometry-aware put/get over a set of
service cores (keys DHT-hashed via :class:`~repro.staging.hashing.ServiceRing`),
plus the in-transit workflow wiring — data-ready RPCs, the task queue, and
bucket management.

Geometry semantics follow DataSpaces: a *put* inserts an n-D array tagged
with its global index bounds; a *get* for any box of the same (name,
version) assembles the request from every overlapping put, raising if the
box is not fully covered.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.costmodel.models import CostModel
from repro.des import Engine
from repro.staging.buckets import StagingBucket
from repro.staging.descriptors import TaskDescriptor
from repro.staging.hashing import ServiceRing
from repro.staging.scheduler import TaskScheduler
from repro.transport.dart import DartTransport
from repro.transport.messages import DataDescriptor

Bounds = tuple[tuple[int, int], ...]  # ((lo, hi), ...) per axis, hi exclusive


def _check_bounds(bounds: Bounds) -> None:
    for lo, hi in bounds:
        if hi <= lo:
            raise ValueError(f"empty or inverted bounds {bounds}")


def _intersect(a: Bounds, b: Bounds) -> Bounds | None:
    if len(a) != len(b):
        raise ValueError(f"rank mismatch: {a} vs {b}")
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if hi <= lo:
            return None
        out.append((lo, hi))
    return tuple(out)


def _volume(bounds: Bounds) -> int:
    v = 1
    for lo, hi in bounds:
        v *= hi - lo
    return v


@dataclass
class _StoredObject:
    bounds: Bounds | None
    data: Any
    put_time: float


class DataSpaces:
    """Shared space + in-transit workflow coordinator."""

    def __init__(self, engine: Engine, transport: DartTransport,
                 n_servers: int = 4, cost_model: CostModel | None = None,
                 rpc_latency: float = 2.0e-5) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        self.engine = engine
        self.transport = transport
        self.ring = ServiceRing(n_servers)
        self.cost_model = cost_model
        self.rpc_latency = rpc_latency
        self.scheduler = TaskScheduler(engine)
        self.buckets: list[StagingBucket] = []
        self._store: dict[tuple[str, int], list[_StoredObject]] = {}
        self._task_ids = itertools.count()
        #: RPCs handled per service core (load-balance instrumentation).
        self.server_rpc_counts: list[int] = [0] * n_servers
        self._outstanding = 0
        self._drain_events: list[Any] = []

    # -- tuple space --------------------------------------------------------

    def _rpc(self, key: str) -> None:
        self.server_rpc_counts[self.ring.server_for(key)] += 1

    def put(self, name: str, version: int, data: Any,
            bounds: Bounds | None = None) -> None:
        """Insert an object (optionally geometry-tagged) into the space."""
        if bounds is not None:
            _check_bounds(bounds)
            arr = np.asarray(data)
            shape = tuple(hi - lo for lo, hi in bounds)
            if arr.shape != shape:
                raise ValueError(
                    f"data shape {arr.shape} does not match bounds extent {shape}"
                )
        self._rpc(f"{name}@{version}")
        self._store.setdefault((name, version), []).append(
            _StoredObject(bounds=bounds, data=data, put_time=self.engine.now))

    def get(self, name: str, version: int, bounds: Bounds | None = None) -> Any:
        """Retrieve an object or assemble a geometric sub-box.

        Without ``bounds``: returns the most recent plain put. With
        ``bounds``: assembles the requested box from all overlapping
        geometry-tagged puts; raises ``KeyError`` if uncovered cells remain.
        """
        self._rpc(f"{name}@{version}")
        objs = self._store.get((name, version))
        if not objs:
            raise KeyError(f"no object {name!r} at version {version}")
        if bounds is None:
            plain = [o for o in objs if o.bounds is None]
            if not plain:
                raise KeyError(
                    f"{name!r}@{version} holds only geometric puts; pass bounds")
            return plain[-1].data

        _check_bounds(bounds)
        pieces = [o for o in objs if o.bounds is not None]
        if not pieces:
            raise KeyError(f"{name!r}@{version} has no geometric puts")
        shape = tuple(hi - lo for lo, hi in bounds)
        sample = np.asarray(pieces[0].data)
        out = np.zeros(shape, dtype=sample.dtype)
        covered = 0
        for obj in pieces:
            inter = _intersect(obj.bounds, bounds)  # type: ignore[arg-type]
            if inter is None:
                continue
            src = np.asarray(obj.data)
            src_sl = tuple(slice(lo - olo, hi - olo)
                           for (lo, hi), (olo, _ohi) in zip(inter, obj.bounds))
            dst_sl = tuple(slice(lo - blo, hi - blo)
                           for (lo, hi), (blo, _bhi) in zip(inter, bounds))
            out[dst_sl] = src[src_sl]
            covered += _volume(inter)
        if covered < _volume(bounds):
            raise KeyError(
                f"requested box {bounds} of {name!r}@{version} is not fully "
                f"covered ({covered}/{_volume(bounds)} cells)")
        return out

    def versions(self, name: str) -> list[int]:
        """All stored versions of ``name`` (ascending)."""
        return sorted(v for (n, v) in self._store if n == name)

    def query(self, name: str, version_lo: int, version_hi: int
              ) -> list[tuple[int, Any]]:
        """All plain (non-geometric) objects of ``name`` with version in
        ``[version_lo, version_hi]``, ascending — DataSpaces' flexible
        version-range query used by consumers that lag the producer."""
        if version_hi < version_lo:
            raise ValueError(f"empty version range [{version_lo}, {version_hi}]")
        out = []
        for v in self.versions(name):
            if version_lo <= v <= version_hi:
                plain = [o for o in self._store[(name, v)] if o.bounds is None]
                if plain:
                    out.append((v, plain[-1].data))
        return out

    def stored_bytes(self) -> int:
        """Approximate bytes held in the space (staging memory pressure)."""
        total = 0
        for objs in self._store.values():
            for o in objs:
                data = o.data
                total += int(data.nbytes) if isinstance(data, np.ndarray) else 64
        return total

    def gc_versions(self, name: str, keep_latest: int) -> int:
        """Drop all but the newest ``keep_latest`` versions of ``name``.

        Staging memory is the binding constraint on the sustainable
        analysis frequency (§III); consumers acknowledge versions and the
        space garbage-collects behind them. Returns versions removed.
        """
        if keep_latest < 0:
            raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
        versions = self.versions(name)
        doomed = versions[:max(0, len(versions) - keep_latest)]
        for v in doomed:
            del self._store[(name, v)]
        return len(doomed)

    # -- workflow: in-situ side ------------------------------------------------

    def submit_insitu_result(self, analysis: str, timestep: int,
                             source_node: str, payload: Any,
                             nbytes: int | None = None,
                             compute: Callable[[list[Any]], Any] | None = None,
                             cost_op: str | None = None,
                             cost_elements: int = 0,
                             task_key: str | None = None,
                             meta: dict[str, Any] | None = None,
                             ) -> DataDescriptor:
        """Register an in-situ result and raise the *data-ready* event.

        Registers the payload for RDMA pulls, then sends the descriptor to
        the scheduler as a short message (one task per call). For analyses
        whose in-transit stage consumes *many* regions in one task (e.g.
        the serial merge-tree glue), use :meth:`submit_grouped_result`.
        """
        desc = self.transport.register(source_node, payload,
                                       meta={"analysis": analysis,
                                             "timestep": timestep,
                                             **(meta or {})},
                                       nbytes=nbytes)
        task = TaskDescriptor(
            task_id=task_key or f"{analysis}/t{timestep}/#{next(self._task_ids)}",
            analysis=analysis, timestep=timestep, data=[desc],
            compute=compute, cost_op=cost_op, cost_elements=cost_elements,
        )
        self._rpc(task.task_id)
        self._outstanding += 1
        self.transport.notify("scheduler", task,
                              nbytes=desc.descriptor_bytes(),
                              on_delivery=self.scheduler.data_ready)
        return desc

    def submit_grouped_result(self, analysis: str, timestep: int,
                              descriptors: Sequence[DataDescriptor],
                              compute: Callable[[list[Any]], Any] | None = None,
                              cost_op: str | None = None,
                              cost_elements: int = 0,
                              stream_compute: Callable[[Any, Any], Any] | None = None,
                              stream_finalize: Callable[[Any], Any] | None = None,
                              stream_cost_per_payload: float = 0.0,
                              ) -> TaskDescriptor:
        """Create one in-transit task consuming many registered regions.

        Pass ``compute`` for the buffered mode (all payloads pulled, then
        processed) or ``stream_compute``/``stream_finalize`` for the
        streaming mode (each payload processed on arrival).
        """
        if not descriptors:
            raise ValueError("grouped task needs at least one descriptor")
        task = TaskDescriptor(
            task_id=f"{analysis}/t{timestep}/#{next(self._task_ids)}",
            analysis=analysis, timestep=timestep, data=list(descriptors),
            compute=compute, cost_op=cost_op, cost_elements=cost_elements,
            stream_compute=stream_compute, stream_finalize=stream_finalize,
            stream_cost_per_payload=stream_cost_per_payload,
        )
        self._rpc(task.task_id)
        self._outstanding += 1
        self.transport.notify("scheduler", task, nbytes=512,
                              on_delivery=self.scheduler.data_ready)
        return task

    # -- workflow: staging side ---------------------------------------------------

    def spawn_buckets(self, names: Sequence[str]) -> list[StagingBucket]:
        """Create and start one bucket process per staging core name."""
        for name in names:
            bucket = StagingBucket(name, self.engine, self.scheduler,
                                   self.transport, self.cost_model,
                                   rpc_latency=self.rpc_latency,
                                   on_task_done=self._on_task_done)
            self.buckets.append(bucket)
            self.engine.process(bucket.run(), name=f"bucket:{name}")
        return self.buckets

    def _on_task_done(self, _result: Any) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            events, self._drain_events = self._drain_events, []
            for ev in events:
                ev.succeed(None)

    def drained(self):
        """Event triggering once every submitted task has completed."""
        ev = self.engine.event()
        if self._outstanding == 0:
            ev.succeed(None)
        else:
            self._drain_events.append(ev)
        return ev

    def shutdown_buckets(self) -> None:
        """Queue one shutdown sentinel per bucket once all work drains.

        Safe to call immediately after the last submit: sentinels are only
        inserted after every outstanding task has completed, so they cannot
        overtake data-ready notifications still in flight.
        """
        def drain_then_shutdown():
            yield self.drained()
            for _ in self.buckets:
                self.scheduler.data_ready(StagingBucket.SHUTDOWN)

        self.engine.process(drain_then_shutdown(), name="shutdown")

    def all_results(self) -> list:
        """All completed in-transit task results across buckets, by finish time."""
        out = [r for b in self.buckets for r in b.results]
        out.sort(key=lambda r: r.finish_time)
        return out
