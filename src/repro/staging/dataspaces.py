"""The DataSpaces shared-space service.

Implements the "scalable, semantically specialized shared space
abstraction" of §IV: versioned, geometry-aware put/get over a set of
service cores (keys DHT-hashed via :class:`~repro.staging.hashing.ServiceRing`),
plus the in-transit workflow wiring — data-ready RPCs, the task queue, and
bucket management.

Geometry semantics follow DataSpaces: a *put* inserts an n-D array tagged
with its global index bounds; a *get* for any box of the same (name,
version) assembles the request from every overlapping put, raising if the
box is not fully covered.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.costmodel.models import CostModel
from repro.des import Engine, ProcessHandle
from repro.obs.tracer import get_tracer
from repro.staging.buckets import StagingBucket
from repro.staging.descriptors import TaskDescriptor, TaskResult
from repro.staging.hashing import ServiceRing
from repro.staging.scheduler import TaskScheduler
from repro.transport.dart import DartTransport
from repro.transport.messages import DataDescriptor

Bounds = tuple[tuple[int, int], ...]  # ((lo, hi), ...) per axis, hi exclusive


def _check_bounds(bounds: Bounds) -> None:
    for lo, hi in bounds:
        if hi <= lo:
            raise ValueError(f"empty or inverted bounds {bounds}")


def _intersect(a: Bounds, b: Bounds) -> Bounds | None:
    if len(a) != len(b):
        raise ValueError(f"rank mismatch: {a} vs {b}")
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if hi <= lo:
            return None
        out.append((lo, hi))
    return tuple(out)


def _volume(bounds: Bounds) -> int:
    v = 1
    for lo, hi in bounds:
        v *= hi - lo
    return v


@dataclass
class _StoredObject:
    bounds: Bounds | None
    data: Any
    put_time: float


class DataSpaces:
    """Shared space + in-transit workflow coordinator.

    Fault tolerance knobs (all off by default, preserving the happy-path
    configuration):

    * ``lease_timeout`` — per-assignment leases in the scheduler; a task
      held by a crashed bucket is requeued within one lease period;
    * ``bucket_restart_delay`` / ``max_bucket_restarts`` — the bucket
      supervisor: crashed staging cores are replaced after the delay,
      keeping the pool at its configured size, up to the restart budget;
    * ``insitu_fallback`` — when the staging area is *fully* down (every
      bucket dead, no restart pending), queued and future tasks run
      in-situ at the cost model's in-situ price instead of hanging.
    """

    def __init__(self, engine: Engine, transport: DartTransport,
                 n_servers: int = 4, cost_model: CostModel | None = None,
                 rpc_latency: float = 2.0e-5,
                 lease_timeout: float | None = None,
                 bucket_restart_delay: float | None = None,
                 max_bucket_restarts: int = 0,
                 insitu_fallback: bool = True,
                 name: str | None = None) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        if max_bucket_restarts < 0:
            raise ValueError(
                f"max_bucket_restarts must be >= 0, got {max_bucket_restarts}")
        self.engine = engine
        self.transport = transport
        self.ring = ServiceRing(n_servers)
        self.cost_model = cost_model
        self.rpc_latency = rpc_latency
        #: Optional instance identity; sharded staging names each shard so
        #: per-shard scheduler events stay separable in trace exports.
        self.name = name
        self.scheduler = TaskScheduler(
            engine, lease_timeout=lease_timeout,
            lane=f"scheduler[{name}]" if name else "scheduler")
        self.buckets: list[StagingBucket] = []
        self._store: dict[tuple[str, int], list[_StoredObject]] = {}
        self._task_ids = itertools.count()
        #: RPCs handled per service core (load-balance instrumentation).
        self.server_rpc_counts: list[int] = [0] * n_servers
        self._outstanding = 0
        self._drain_events: list[Any] = []
        # -- fault tolerance state --
        self.bucket_restart_delay = bucket_restart_delay
        self.max_bucket_restarts = max_bucket_restarts
        self.insitu_fallback = insitu_fallback
        self.degraded = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.restarts_used = 0
        self._pending_restarts = 0
        self._restart_ids = itertools.count(1)
        # -- elastic pool (scale-to-target supervisor) --
        #: When set (via :meth:`scale_to`), the supervisor keeps the pool
        #: reconciled to this size instead of the restart-budget policy:
        #: crashed workers are respawned toward the target (after
        #: ``bucket_restart_delay``, immediately if None) and surplus
        #: workers are retired through the scheduler's lease hand-off.
        self.pool_target: int | None = None
        #: Workers respawned by the scale-to-target supervisor (distinct
        #: from the budgeted ``restarts_used``).
        self.pool_respawns = 0
        self._grow_ids = itertools.count(1)
        self._shutting_down = False
        self._bucket_procs: dict[str, ProcessHandle] = {}
        #: Results produced by the degraded-mode in-situ fallback.
        self.fallback_results: list[TaskResult] = []
        #: Task ids that failed terminally in the fallback path.
        self.fallback_failures: list[str] = []
        self._tracer = get_tracer()
        #: Producer span anchoring the *next* submitted task's causal
        #: flow (the driver sets this around each in-situ hand-off).
        self.flow_src: Any | None = None
        #: A pre-created flow to attach to the next submitted task (set
        #: by drivers that start the flow at the in-situ stage so vmpi
        #: collective hops land on it); consumed by one submit.
        self.next_flow: Any | None = None

    # -- tuple space --------------------------------------------------------

    def _rpc(self, key: str) -> None:
        self.server_rpc_counts[self.ring.server_for(key)] += 1

    def put(self, name: str, version: int, data: Any,
            bounds: Bounds | None = None) -> None:
        """Insert an object (optionally geometry-tagged) into the space."""
        if bounds is not None:
            _check_bounds(bounds)
            arr = np.asarray(data)
            shape = tuple(hi - lo for lo, hi in bounds)
            if arr.shape != shape:
                raise ValueError(
                    f"data shape {arr.shape} does not match bounds extent {shape}"
                )
        self._rpc(f"{name}@{version}")
        self._store.setdefault((name, version), []).append(
            _StoredObject(bounds=bounds, data=data, put_time=self.engine.now))

    def get(self, name: str, version: int, bounds: Bounds | None = None) -> Any:
        """Retrieve an object or assemble a geometric sub-box.

        Without ``bounds``: returns the most recent plain put. With
        ``bounds``: assembles the requested box from all overlapping
        geometry-tagged puts; raises ``KeyError`` if uncovered cells remain.
        """
        self._rpc(f"{name}@{version}")
        objs = self._store.get((name, version))
        if not objs:
            raise KeyError(f"no object {name!r} at version {version}")
        if bounds is None:
            plain = [o for o in objs if o.bounds is None]
            if not plain:
                raise KeyError(
                    f"{name!r}@{version} holds only geometric puts; pass bounds")
            return plain[-1].data

        _check_bounds(bounds)
        pieces = [o for o in objs if o.bounds is not None]
        if not pieces:
            raise KeyError(f"{name!r}@{version} has no geometric puts")
        shape = tuple(hi - lo for lo, hi in bounds)
        sample = np.asarray(pieces[0].data)
        out = np.zeros(shape, dtype=sample.dtype)
        covered = 0
        for obj in pieces:
            inter = _intersect(obj.bounds, bounds)  # type: ignore[arg-type]
            if inter is None:
                continue
            src = np.asarray(obj.data)
            src_sl = tuple(slice(lo - olo, hi - olo)
                           for (lo, hi), (olo, _ohi) in zip(inter, obj.bounds))
            dst_sl = tuple(slice(lo - blo, hi - blo)
                           for (lo, hi), (blo, _bhi) in zip(inter, bounds))
            out[dst_sl] = src[src_sl]
            covered += _volume(inter)
        if covered < _volume(bounds):
            raise KeyError(
                f"requested box {bounds} of {name!r}@{version} is not fully "
                f"covered ({covered}/{_volume(bounds)} cells)")
        return out

    def versions(self, name: str) -> list[int]:
        """All stored versions of ``name`` (ascending)."""
        return sorted(v for (n, v) in self._store if n == name)

    def query(self, name: str, version_lo: int, version_hi: int
              ) -> list[tuple[int, Any]]:
        """All plain (non-geometric) objects of ``name`` with version in
        ``[version_lo, version_hi]``, ascending — DataSpaces' flexible
        version-range query used by consumers that lag the producer."""
        if version_hi < version_lo:
            raise ValueError(f"empty version range [{version_lo}, {version_hi}]")
        out = []
        for v in self.versions(name):
            if version_lo <= v <= version_hi:
                plain = [o for o in self._store[(name, v)] if o.bounds is None]
                if plain:
                    out.append((v, plain[-1].data))
        return out

    def stored_bytes(self) -> int:
        """Approximate bytes held in the space (staging memory pressure)."""
        total = 0
        for objs in self._store.values():
            for o in objs:
                data = o.data
                total += int(data.nbytes) if isinstance(data, np.ndarray) else 64
        return total

    def gc_versions(self, name: str, keep_latest: int) -> int:
        """Drop all but the newest ``keep_latest`` versions of ``name``.

        Staging memory is the binding constraint on the sustainable
        analysis frequency (§III); consumers acknowledge versions and the
        space garbage-collects behind them. Returns versions removed.
        """
        if keep_latest < 0:
            raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
        versions = self.versions(name)
        doomed = versions[:max(0, len(versions) - keep_latest)]
        for v in doomed:
            del self._store[(name, v)]
        return len(doomed)

    def drop_version(self, name: str, version: int) -> bool:
        """Drop one exact ``(name, version)`` entry; True if it existed.

        Sharded staging spreads versions of a name across shards, so its
        global GC decides which versions die and revokes each from the
        shard that owns it.
        """
        return self._store.pop((name, version), None) is not None

    # -- workflow: in-situ side ------------------------------------------------

    def _task_flow(self, task: TaskDescriptor) -> Any | None:
        """Attach a causal flow to ``task`` (None when tracing is off).

        A driver-provided :attr:`next_flow` is consumed first (it already
        carries the in-situ collective hops); otherwise a fresh flow is
        begun, anchored at :attr:`flow_src` when the driver set one.
        """
        tracer = self._tracer
        if not tracer.enabled:
            return None
        flow = self.next_flow
        if flow is not None:
            self.next_flow = None
        else:
            flow = tracer.flow_begin("task", src_span=self.flow_src)
        flow.tags.setdefault("task_id", task.task_id)
        flow.tags.setdefault("analysis", task.analysis)
        flow.tags.setdefault("step", task.timestep)
        task.flow = flow
        return flow

    def submit_insitu_result(self, analysis: str, timestep: int,
                             source_node: str, payload: Any,
                             nbytes: int | None = None,
                             compute: Callable[[list[Any]], Any] | None = None,
                             cost_op: str | None = None,
                             cost_elements: int = 0,
                             task_key: str | None = None,
                             meta: dict[str, Any] | None = None,
                             max_retries: int = 0,
                             insitu_cost_op: str | None = None,
                             ) -> DataDescriptor:
        """Register an in-situ result and raise the *data-ready* event.

        Registers the payload for RDMA pulls, then sends the descriptor to
        the scheduler as a short message (one task per call). For analyses
        whose in-transit stage consumes *many* regions in one task (e.g.
        the serial merge-tree glue), use :meth:`submit_grouped_result`.
        """
        desc = self.transport.register(source_node, payload,
                                       meta={"analysis": analysis,
                                             "timestep": timestep,
                                             **(meta or {})},
                                       nbytes=nbytes)
        task = TaskDescriptor(
            task_id=task_key or f"{analysis}/t{timestep}/#{next(self._task_ids)}",
            analysis=analysis, timestep=timestep, data=[desc],
            compute=compute, cost_op=cost_op, cost_elements=cost_elements,
            max_retries=max_retries, insitu_cost_op=insitu_cost_op,
        )
        self._task_flow(task)
        self._rpc(task.task_id)
        self._outstanding += 1
        self.submitted += 1
        self.transport.notify("scheduler", task,
                              nbytes=desc.descriptor_bytes(),
                              on_delivery=self.scheduler.data_ready)
        return desc

    def submit_grouped_result(self, analysis: str, timestep: int,
                              descriptors: Sequence[DataDescriptor],
                              compute: Callable[[list[Any]], Any] | None = None,
                              cost_op: str | None = None,
                              cost_elements: int = 0,
                              stream_compute: Callable[[Any, Any], Any] | None = None,
                              stream_finalize: Callable[[Any], Any] | None = None,
                              stream_cost_per_payload: float = 0.0,
                              max_retries: int = 0,
                              insitu_cost_op: str | None = None,
                              ) -> TaskDescriptor:
        """Create one in-transit task consuming many registered regions.

        Pass ``compute`` for the buffered mode (all payloads pulled, then
        processed) or ``stream_compute``/``stream_finalize`` for the
        streaming mode (each payload processed on arrival).
        """
        if not descriptors:
            raise ValueError("grouped task needs at least one descriptor")
        task = TaskDescriptor(
            task_id=f"{analysis}/t{timestep}/#{next(self._task_ids)}",
            analysis=analysis, timestep=timestep, data=list(descriptors),
            compute=compute, cost_op=cost_op, cost_elements=cost_elements,
            stream_compute=stream_compute, stream_finalize=stream_finalize,
            stream_cost_per_payload=stream_cost_per_payload,
            max_retries=max_retries, insitu_cost_op=insitu_cost_op,
        )
        self._task_flow(task)
        self._rpc(task.task_id)
        self._outstanding += 1
        self.submitted += 1
        self.transport.notify("scheduler", task, nbytes=512,
                              on_delivery=self.scheduler.data_ready)
        return task

    # -- workflow: staging side ---------------------------------------------------

    def spawn_buckets(self, names: Sequence[str]) -> list[StagingBucket]:
        """Create and start one bucket process per staging core name."""
        for name in names:
            self._spawn_bucket(name)
        return self.buckets

    def _spawn_bucket(self, name: str) -> StagingBucket:
        bucket = StagingBucket(name, self.engine, self.scheduler,
                               self.transport, self.cost_model,
                               rpc_latency=self.rpc_latency,
                               on_task_done=self._on_task_done,
                               on_death=self._on_bucket_death)
        self.buckets.append(bucket)
        self._bucket_procs[name] = self.engine.process(
            bucket.run(), name=f"bucket:{name}")
        return bucket

    def live_buckets(self) -> int:
        """Number of staging cores currently alive (retired ones left)."""
        return sum(1 for b in self.buckets if not b.dead and not b.retired)

    def committed_buckets(self) -> int:
        """Pool size the supervisor is committed to: live workers minus
        pending retirements, plus respawns already scheduled."""
        alive = sum(1 for b in self.buckets
                    if not b.dead and not b.retired and not b.retiring)
        return alive + self._pending_restarts

    def scale_to(self, target: int) -> dict[str, list[str]]:
        """Elastically resize the bucket pool to ``target`` workers.

        Growth spawns fresh workers immediately (DES time); shrinkage
        retires surplus workers, newest first, through
        :meth:`TaskScheduler.retire_bucket` — an idle worker leaves at
        once, a busy one finishes its current task (its lease is handed
        back via the normal ``task_done`` path) and then exits. Setting a
        target also switches the crash supervisor from the restart-budget
        policy to reconcile-to-target (see :meth:`_on_bucket_death`).

        Returns ``{"spawned": [...], "retiring": [...]}`` worker names.
        """
        if target < 1:
            raise ValueError(f"pool target must be >= 1, got {target}")
        if self._shutting_down or self.degraded:
            raise RuntimeError(
                "cannot scale a draining or degraded staging area")
        self.pool_target = target
        spawned: list[str] = []
        retiring: list[str] = []
        alive = [b for b in self.buckets
                 if not b.dead and not b.retired and not b.retiring]
        committed = len(alive) + self._pending_restarts
        while committed < target:
            name = f"staging+{next(self._grow_ids)}"
            self._spawn_bucket(name)
            spawned.append(name)
            committed += 1
        surplus = committed - target
        for bucket in reversed(alive):
            if surplus == 0:
                break
            bucket.retiring = True
            self.scheduler.retire_bucket(bucket.name)
            retiring.append(bucket.name)
            surplus -= 1
        if self._tracer.enabled and (spawned or retiring):
            self._tracer.counter("dataspaces.pool_scalings")
            self._tracer.instant("dataspaces.scale_to", lane="dataspaces",
                                 target=target, spawned=len(spawned),
                                 retiring=len(retiring))
        return {"spawned": spawned, "retiring": retiring}

    def crash_bucket(self, name: str, cause: Any = "injected crash") -> None:
        """Kill a staging core: its worker process sees an Interrupt.

        Recovery of any in-flight task relies on scheduler leases
        (``lease_timeout``); the supervisor replaces the bucket if a
        restart budget is configured, or degrades to in-situ execution
        when the whole staging area is down.
        """
        proc = self._bucket_procs.get(name)
        if proc is None:
            raise KeyError(f"no bucket named {name!r}")
        if proc.finished:
            return  # already dead or shut down
        proc.interrupt(cause)

    def _on_bucket_death(self, bucket: StagingBucket, cause: Any) -> None:
        self.scheduler.mark_bucket_dead(bucket.name)
        if self._tracer.enabled:
            self._tracer.counter("dataspaces.bucket_deaths")
        if self._shutting_down or self.degraded:
            return
        if self.pool_target is not None:
            # Scale-to-target mode: reconcile toward the target instead of
            # spending the restart budget; the controller's memory bound
            # (not ``max_bucket_restarts``) limits the pool.
            if self.committed_buckets() < self.pool_target:
                self._pending_restarts += 1
                self.pool_respawns += 1
                replacement = f"staging+{next(self._grow_ids)}"
                if self._tracer.enabled:
                    self._tracer.counter("dataspaces.pool_respawns")
                    self._tracer.instant("dataspaces.pool_respawn",
                                         lane="dataspaces", dead=bucket.name,
                                         replacement=replacement)

                def respawn() -> None:
                    self._pending_restarts -= 1
                    if not self._shutting_down and not self.degraded:
                        self._spawn_bucket(replacement)

                self.engine.call_at(
                    self.engine.now + (self.bucket_restart_delay or 0.0),
                    respawn)
            return
        if (self.bucket_restart_delay is not None
                and self.restarts_used < self.max_bucket_restarts):
            self.restarts_used += 1
            self._pending_restarts += 1
            replacement = f"{bucket.name}~r{next(self._restart_ids)}"
            if self._tracer.enabled:
                self._tracer.counter("dataspaces.bucket_restarts")
                self._tracer.instant("dataspaces.bucket_restart",
                                     lane="dataspaces", dead=bucket.name,
                                     replacement=replacement)

            def restart() -> None:
                self._pending_restarts -= 1
                if not self._shutting_down and not self.degraded:
                    self._spawn_bucket(replacement)

            self.engine.call_at(self.engine.now + self.bucket_restart_delay,
                                restart)
        elif (self.live_buckets() == 0 and self._pending_restarts == 0
                and self.insitu_fallback):
            self._enter_degraded_mode()

    # -- degraded mode: staging fully down -----------------------------------

    def _enter_degraded_mode(self) -> None:
        """Staging area fully down: run in-transit tasks in-situ.

        Queued tasks are stolen from the scheduler and every future
        data-ready (including lease reassignments from the dead pool) is
        routed to the fallback, so ``drained()`` still fires and no task
        is silently lost.
        """
        self.degraded = True
        if self._tracer.enabled:
            self._tracer.counter("dataspaces.degraded")
            self._tracer.instant("dataspaces.degraded", lane="dataspaces")
        self.scheduler.task_sink = self._fallback_submit
        for task in self.scheduler.steal_queue():
            self._fallback_submit(task)

    def _fallback_submit(self, task: TaskDescriptor) -> None:
        if task.task_id == StagingBucket.SHUTDOWN.task_id:
            return  # no buckets left to stop
        self.engine.process(self._run_insitu_fallback(task),
                            name=f"fallback:{task.task_id}")

    def _run_insitu_fallback(self, task: TaskDescriptor):
        """DES process: execute one task in-situ (no staging, no RDMA).

        The data never moves — the computation runs where it was produced,
        charged at the cost model's in-situ price (``insitu_cost_op``,
        falling back to ``cost_op``).
        """
        start = self.engine.now
        try:
            payloads = [self.transport.registry.lookup(d.region_id).payload
                        for d in task.data]
            if task.stream_compute is not None:
                state: Any = None
                for payload in payloads:
                    state = task.stream_compute(state, payload)
                    if task.stream_cost_per_payload:
                        yield self.engine.timeout(task.stream_cost_per_payload)
                value = (task.stream_finalize(state)
                         if task.stream_finalize is not None else state)
            else:
                value = (task.compute(payloads)
                         if task.compute is not None else None)
            op = task.insitu_cost_op or task.cost_op
            if op is not None and self.cost_model is not None:
                yield self.engine.timeout(
                    self.cost_model.time(op, task.cost_elements))
        except Exception as exc:  # noqa: BLE001 — fault isolation boundary
            self._release_task_regions(task)
            self.fallback_failures.append(task.task_id)
            if self._tracer.enabled:
                self._tracer.counter("dataspaces.fallback_failures")
                self._tracer.instant("dataspaces.fallback_failure",
                                     lane="dataspaces", task_id=task.task_id,
                                     error=repr(exc))
            self._on_task_done(None)
            return
        self._release_task_regions(task)
        result = TaskResult(
            task_id=task.task_id, analysis=task.analysis,
            timestep=task.timestep, bucket="insitu-fallback", value=value,
            enqueue_time=start, assign_time=start, pull_done_time=start,
            finish_time=self.engine.now, bytes_pulled=0,
        )
        self.fallback_results.append(result)
        if self._tracer.enabled:
            self._tracer.counter("dataspaces.fallback_tasks")
        self._on_task_done(result)

    def _release_task_regions(self, task: TaskDescriptor) -> None:
        registry = self.transport.registry
        for desc in task.data:
            if desc.region_id in registry:
                self.transport.release(desc)

    # -- drain accounting -----------------------------------------------------

    def _on_task_done(self, result: Any) -> None:
        if result is None:
            self.failed += 1
        else:
            self.completed += 1
        self._outstanding -= 1
        if self._outstanding == 0:
            events, self._drain_events = self._drain_events, []
            for ev in events:
                ev.succeed(None)

    def task_accounting(self) -> dict[str, int]:
        """Exact task ledger: every submitted task is completed, failed,
        or still outstanding — nothing is silently lost."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "outstanding": self._outstanding,
        }

    def failed_task_ids(self) -> list[str]:
        """Ids of terminally failed tasks (buckets + fallback)."""
        out = [tid for b in self.buckets for tid in b.terminal_failures]
        out.extend(self.fallback_failures)
        return out

    def drained(self):
        """Event triggering once every submitted task has completed."""
        ev = self.engine.event()
        if self._outstanding == 0:
            ev.succeed(None)
        else:
            self._drain_events.append(ev)
        return ev

    def shutdown_buckets(self) -> None:
        """Queue one shutdown sentinel per bucket once all work drains.

        Safe to call immediately after the last submit: sentinels are only
        inserted after every outstanding task has completed, so they cannot
        overtake data-ready notifications still in flight.
        """
        def drain_then_shutdown():
            yield self.drained()
            self._shutting_down = True
            for bucket in self.buckets:
                # Retired workers already left; a retiring one takes the
                # retire sentinel at its next announcement instead.
                if not bucket.dead and not bucket.retired and not bucket.retiring:
                    self.scheduler.data_ready(StagingBucket.SHUTDOWN)

        self.engine.process(drain_then_shutdown(), name="shutdown")

    def all_results(self) -> list:
        """All completed in-transit task results (buckets + degraded-mode
        fallback), by finish time."""
        out = [r for b in self.buckets for r in b.results]
        out.extend(self.fallback_results)
        out.sort(key=lambda r: r.finish_time)
        return out
