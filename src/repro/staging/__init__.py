"""DataSpaces-like scheduling and coordination layer (paper §IV).

Components mirror Fig. 5 of the paper:

* :class:`~repro.staging.dataspaces.DataSpaces` — the shared-space service:
  versioned put/get keyed by (name, version), DHT-hashed over service
  cores, plus the in-transit task queue and free-bucket list;
* :class:`~repro.staging.descriptors.TaskDescriptor` — an in-transit task:
  which data regions to pull and what computation to run on them;
* :class:`~repro.staging.scheduler.TaskScheduler` — matches *data-ready*
  tasks to *bucket-ready* staging cores first-come first-served;
* :class:`~repro.staging.buckets.StagingBucket` — a DES process on one
  staging core: announce readiness, receive a task, asynchronously pull the
  data via DART, execute the in-transit stage, repeat.
"""

from repro.staging.hashing import ServiceRing
from repro.staging.descriptors import SHUTDOWN_TASK_ID, TaskDescriptor, TaskResult
from repro.staging.scheduler import (
    AssignmentRecord,
    ReassignmentRecord,
    TaskScheduler,
)
from repro.staging.buckets import StagingBucket
from repro.staging.dataspaces import DataSpaces

__all__ = [
    "ServiceRing",
    "SHUTDOWN_TASK_ID",
    "TaskDescriptor",
    "TaskResult",
    "AssignmentRecord",
    "ReassignmentRecord",
    "TaskScheduler",
    "StagingBucket",
    "DataSpaces",
]
