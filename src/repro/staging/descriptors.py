"""In-transit task descriptors and results."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.transport.messages import DataDescriptor

#: Task id of the bucket shutdown sentinel (see ``StagingBucket.SHUTDOWN``).
#: The scheduler never leases it and the degraded-mode fallback ignores it.
SHUTDOWN_TASK_ID = "__shutdown__"

#: Task id of the bucket retirement sentinel (see ``StagingBucket.RETIRE``).
#: Handed by the scheduler to exactly one bucket when the pool scales
#: down: the bucket exits its worker loop cleanly (``retired``, not
#: ``dead``, so the supervisor does not replace it). Never leased.
RETIRE_TASK_ID = "__retire__"


@dataclass
class TaskDescriptor:
    """One in-transit task: pull these regions, run this computation.

    ``compute`` is the real in-transit stage (e.g. streaming merge-tree
    glue, serial render, statistics derive); it receives the list of pulled
    payloads in ``data`` order. ``cost_op``/``cost_elements`` tell the
    performance layer what to charge for the computation on the modeled
    machine (see :mod:`repro.costmodel`).
    """

    task_id: str
    analysis: str
    timestep: int
    data: list[DataDescriptor]
    compute: Callable[[list[Any]], Any] | None = None
    cost_op: str | None = None
    cost_elements: int = 0
    #: Streaming mode (§VI future work, implemented): process each pulled
    #: payload as soon as it arrives. ``stream_compute(state, payload)``
    #: returns the updated state (initial state ``None``);
    #: ``stream_finalize(state)`` produces the task value. Mutually
    #: exclusive with ``compute``.
    stream_compute: Callable[[Any, Any], Any] | None = None
    stream_finalize: Callable[[Any], Any] | None = None
    #: Modeled seconds of in-transit compute charged per streamed payload.
    stream_cost_per_payload: float = 0.0
    #: Tasks whose attempt fails (pull or compute) are requeued up to this
    #: many times through the FCFS scheduler; 0 = fail terminally on the
    #: first error. Note FCFS gives no placement guarantee — a retried
    #: task can land straight back on the bucket it just failed on if that
    #: bucket is the first to announce readiness.
    max_retries: int = 0
    #: Cost-model op charged when the task is executed *in-situ* by the
    #: degraded-mode fallback (staging area fully down); ``None`` falls
    #: back to ``cost_op`` — the in-situ price of the same computation.
    insitu_cost_op: str | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    #: Mutable retry counter (managed by the buckets).
    attempts: int = 0
    #: Causal flow context (:class:`repro.obs.flow.FlowContext`) riding
    #: with the descriptor through scheduler/transport/bucket hand-offs;
    #: ``None`` whenever tracing is off.
    flow: Any | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.cost_elements < 0:
            raise ValueError(f"cost_elements must be >= 0, got {self.cost_elements}")
        if self.compute is not None and self.stream_compute is not None:
            raise ValueError("compute and stream_compute are mutually exclusive")
        if self.stream_cost_per_payload < 0:
            raise ValueError("stream_cost_per_payload must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def total_bytes(self) -> int:
        return sum(d.nbytes for d in self.data)


def retire_sentinel() -> TaskDescriptor:
    """The pool-scale-down sentinel handed to exactly one bucket."""
    return TaskDescriptor(task_id=RETIRE_TASK_ID, analysis="__retire__",
                          timestep=-1, data=[])


@dataclass
class TaskResult:
    """A completed in-transit task, with full timing provenance."""

    task_id: str
    analysis: str
    timestep: int
    bucket: str
    value: Any
    enqueue_time: float
    assign_time: float
    pull_done_time: float
    finish_time: float
    bytes_pulled: int

    @property
    def queue_wait(self) -> float:
        return self.assign_time - self.enqueue_time

    @property
    def pull_duration(self) -> float:
        return self.pull_done_time - self.assign_time

    @property
    def compute_duration(self) -> float:
        return self.finish_time - self.pull_done_time

    @property
    def total_latency(self) -> float:
        return self.finish_time - self.enqueue_time
