"""Staging buckets: the in-transit worker loop (paper §IV, Fig. 5).

Each staging-area core runs one bucket process:

1. send a *bucket-ready* RPC to the scheduler;
2. receive an assigned task;
3. asynchronously pull every data region the task names (RDMA Get via
   DART);
4. execute the in-transit computation — the *real* Python computation runs
   so results are genuine, while the DES clock advances by the cost-model
   time for the full-scale run;
5. publish the result and loop.

The bucket stops when it receives the ``StagingBucket.SHUTDOWN`` sentinel
task, or *dies* when a fault injector interrupts its process (modelling a
staging-node crash).

Fault isolation: the entire task attempt — pulls (buffered or streaming
prefetch) and the computation — runs under one containment boundary. A
failing attempt never kills the worker loop; it either requeues the task
(retries remaining) or records a terminal failure and notifies
``on_task_done(None)`` so drain accounting stays exact. Only a DES
:class:`~repro.des.Interrupt` (injected crash) terminates the loop, via
the ``on_death`` callback.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.costmodel.models import CostModel
from repro.des import Engine, Interrupt
from repro.obs.flow import EDGE_SERVICE
from repro.obs.tracer import get_tracer
from repro.staging.descriptors import (RETIRE_TASK_ID, TaskDescriptor,
                                       TaskResult)
from repro.staging.scheduler import TaskScheduler
from repro.transport.dart import DartTransport


class _FailedPull:
    """Sentinel returned by a prefetch pull process that failed.

    Prefetch pulls run as independent DES processes; an exception escaping
    a process would crash the whole engine loop, so the process returns
    the error as a value and the consuming bucket re-raises it inside its
    own containment boundary.
    """

    __slots__ = ("region_id", "error")

    def __init__(self, region_id: str, error: Exception) -> None:
        self.region_id = region_id
        self.error = error


class StagingBucket:
    """One in-transit worker on a named staging core."""

    SHUTDOWN = TaskDescriptor(task_id="__shutdown__", analysis="__shutdown__",
                              timestep=-1, data=[])

    def __init__(self, name: str, engine: Engine, scheduler: TaskScheduler,
                 transport: DartTransport, cost_model: CostModel | None = None,
                 rpc_latency: float = 2.0e-5,
                 on_task_done: "Any" = None,
                 on_death: "Any" = None) -> None:
        self.name = name
        self.engine = engine
        self.scheduler = scheduler
        self.transport = transport
        self.cost_model = cost_model
        self.rpc_latency = rpc_latency
        self.on_task_done = on_task_done
        self.on_death = on_death
        self.results: list[TaskResult] = []
        #: (task_id, sim-time, exception repr) per failed task attempt.
        self.failures: list[tuple[str, float, str]] = []
        #: Task ids that exhausted their retry budget on this bucket.
        self.terminal_failures: list[str] = []
        self.busy_time: float = 0.0
        self.dead = False
        #: True once the bucket exited via a scale-down retire sentinel.
        #: Distinct from ``dead``: a retired worker left cleanly and must
        #: not be replaced by the supervisor or sent a shutdown sentinel.
        self.retired = False
        #: True while a scale-down retirement is pending (set by the
        #: elastic supervisor; the worker may still be finishing its
        #: current task). Excluded from the supervisor's committed pool.
        self.retiring = False
        #: The task currently being executed (None while idle).
        self.current_task: TaskDescriptor | None = None
        self._tracer = get_tracer()

    def run(self) -> Generator[Any, Any, None]:
        """The bucket's DES process body."""
        try:
            while True:
                # bucket-ready RPC costs one short-message latency.
                yield self.engine.timeout(self.rpc_latency)
                task: TaskDescriptor = yield self.scheduler.bucket_ready(self.name)
                if task.task_id == StagingBucket.SHUTDOWN.task_id:
                    return
                if task.task_id == RETIRE_TASK_ID:
                    # Pool scale-down: exit cleanly; completed results
                    # stay owned by this (now retired) worker.
                    self.retired = True
                    if self._tracer.enabled:
                        self._tracer.counter("bucket.retirements")
                        self._tracer.instant("bucket.retire", lane=self.name)
                    return
                self.current_task = task
                tracer = self._tracer
                try:
                    if tracer.enabled:
                        span = tracer.begin(f"task:{task.task_id}",
                                            lane=self.name,
                                            category="task",
                                            analysis=task.analysis,
                                            step=task.timestep,
                                            attempt=task.attempts)
                        if task.flow is not None:
                            # Hand-off into the worker: the assign→pickup
                            # gap (bucket-ready RPC) charges to service.
                            tracer.flow_step(task.flow, EDGE_SERVICE,
                                             self.name,
                                             attempt=task.attempts)
                        try:
                            yield from self._execute(task)
                        finally:
                            tracer.end(span)
                    else:
                        yield from self._execute(task)
                finally:
                    self.current_task = None
        except Interrupt as exc:
            # Injected staging-node crash: the worker loop ends. Any task
            # in flight is recovered by its scheduler lease; the region
            # registrations it held stay live for the re-pull.
            self.dead = True
            if self._tracer.enabled:
                self._tracer.counter("bucket.crashes")
                self._tracer.instant("bucket.crash", lane=self.name,
                                     cause=repr(exc.cause))
            if self.on_death is not None:
                self.on_death(self, exc.cause)
            return

    def _execute(self, task: TaskDescriptor) -> Generator[Any, Any, None]:
        assign_t = self.engine.now
        enqueue_t = self._enqueue_time(task, assign_t)
        if task.cost_op is not None and self.cost_model is None:
            # Configuration error, not a task fault: surface it loudly.
            raise RuntimeError(
                f"task {task.task_id!r} charges op {task.cost_op!r} but "
                f"bucket {self.name!r} has no cost model"
            )
        # With retries or leases enabled, producers' regions stay
        # registered so a re-assigned bucket can pull them again
        # (released on success or terminal failure).
        retain = (task.max_retries > 0
                  or self.scheduler.lease_timeout is not None)
        try:
            if task.stream_compute is not None:
                value, pull_done_t = yield from self._run_streaming(task)
            else:
                value, pull_done_t = yield from self._run_buffered(task,
                                                                   retain)
            if task.cost_op is not None:
                yield self.engine.timeout(
                    self.cost_model.time(task.cost_op, task.cost_elements))
        except Interrupt:
            raise  # injected crash — handled by run()
        except Exception as exc:  # noqa: BLE001 — fault isolation boundary
            self._handle_failure(task, exc)
            return
        self._release_regions(task)
        finish_t = self.engine.now

        if self._tracer.enabled:
            # Compute charge (real compute + cost-model time) as an
            # explicit-time span nested inside the lane's task span.
            sp = self._tracer.add_span(f"intransit:{task.analysis}",
                                       lane=self.name,
                                       t_start=pull_done_t, t_end=finish_t,
                                       category="compute", stage="intransit",
                                       analysis=task.analysis,
                                       step=task.timestep,
                                       task_id=task.task_id)
            if task.flow is not None:
                self._tracer.flow_end(task.flow, EDGE_SERVICE, sp)
            self._tracer.counter("bucket.tasks_done")
            self._tracer.counter("bucket.bytes_consumed", task.total_bytes)
            self._tracer.metrics.histogram("bucket.task_time").observe(
                finish_t - assign_t)

        self.busy_time += finish_t - assign_t
        result = TaskResult(
            task_id=task.task_id, analysis=task.analysis, timestep=task.timestep,
            bucket=self.name, value=value,
            enqueue_time=enqueue_t, assign_time=assign_t,
            pull_done_time=pull_done_t, finish_time=finish_t,
            bytes_pulled=task.total_bytes,
        )
        self.results.append(result)
        self.scheduler.task_done(task.task_id)
        if self.on_task_done is not None:
            self.on_task_done(result)

    # -- task attempt bodies -------------------------------------------------

    def _run_buffered(self, task: TaskDescriptor, retain: bool
                      ) -> Generator[Any, Any, tuple[Any, float]]:
        """Pull every region, then run ``compute`` over all payloads."""
        payloads: list[Any] = []
        for desc in task.data:
            payload = yield from self.transport.pull(desc, self.name,
                                                     release=not retain,
                                                     flow=task.flow)
            payloads.append(payload)
        pull_done_t = self.engine.now
        value = task.compute(payloads) if task.compute is not None else None
        return value, pull_done_t

    def _run_streaming(self, task: TaskDescriptor
                       ) -> Generator[Any, Any, tuple[Any, float]]:
        """Streaming mode (§VI): consume each payload the moment its pull
        completes, and *prefetch* the next pull while computing —
        in-transit compute overlaps the remaining transfers, so the task
        takes ~max(total pull, total compute) instead of their sum.

        Pulls never release regions in flight (they are released when the
        task settles), so a retry or lease reassignment can re-pull.
        On failure the in-flight prefetch is absorbed before re-raising so
        no pull process dangles past the attempt.
        """
        state: Any = None
        pending = (self.engine.process(self._pull_proc(task.data[0],
                                                       task.flow),
                                       name=f"{self.name}:pull0")
                   if task.data else None)
        try:
            for i in range(len(task.data)):
                payload = yield pending
                pending = (self.engine.process(
                    self._pull_proc(task.data[i + 1], task.flow),
                    name=f"{self.name}:pull{i + 1}")
                    if i + 1 < len(task.data) else None)
                if isinstance(payload, _FailedPull):
                    raise payload.error
                state = task.stream_compute(state, payload)
                if task.stream_cost_per_payload:
                    yield self.engine.timeout(task.stream_cost_per_payload)
            pull_done_t = self.engine.now
            value = (task.stream_finalize(state)
                     if task.stream_finalize is not None else state)
        except Interrupt:
            raise
        except Exception as exc:
            # Wait out the in-flight prefetch (its process must not outlive
            # the attempt), then re-raise into the containment boundary.
            if pending is not None and not pending.finished:
                yield pending
            raise exc
        return value, pull_done_t

    def _pull_proc(self, desc, flow=None) -> Generator[Any, Any, Any]:
        """Wrap one pull as a joinable DES process (streaming prefetch).

        Failures are returned as :class:`_FailedPull` values — an exception
        escaping a process would take down the engine loop.
        """
        try:
            payload = yield from self.transport.pull(desc, self.name,
                                                     release=False,
                                                     flow=flow)
        except Interrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — crossed back in consumer
            return _FailedPull(desc.region_id, exc)
        return payload

    # -- failure containment --------------------------------------------------

    def _handle_failure(self, task: TaskDescriptor, exc: Exception) -> None:
        """Record a failed attempt: requeue (retries left) or settle as a
        terminal failure. The worker loop stays alive either way."""
        task.attempts += 1
        self.failures.append((task.task_id, self.engine.now, repr(exc)))
        if self._tracer.enabled:
            self._tracer.counter("bucket.task_failures")
            self._tracer.instant("bucket.failure", lane=self.name,
                                 task_id=task.task_id, error=repr(exc),
                                 attempt=task.attempts)
        self.scheduler.task_done(task.task_id)  # revoke this attempt's lease
        if task.attempts <= task.max_retries:
            if self._tracer.enabled:
                self._tracer.counter("bucket.retries")
            self.scheduler.data_ready(task)
            return
        self._release_regions(task)
        self.terminal_failures.append(task.task_id)
        if self._tracer.enabled:
            self._tracer.counter("bucket.terminal_failures")
        if self.on_task_done is not None:
            self.on_task_done(None)

    def _release_regions(self, task: TaskDescriptor) -> None:
        """Release whatever regions of the task are still registered."""
        registry = self.transport.registry
        for desc in task.data:
            if desc.region_id in registry:
                self.transport.release(desc)

    def _enqueue_time(self, task: TaskDescriptor, default: float) -> float:
        for rec in reversed(self.scheduler.assignments):
            if rec.task_id == task.task_id:
                return rec.data_ready_time
        return default
