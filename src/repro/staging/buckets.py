"""Staging buckets: the in-transit worker loop (paper §IV, Fig. 5).

Each staging-area core runs one bucket process:

1. send a *bucket-ready* RPC to the scheduler;
2. receive an assigned task;
3. asynchronously pull every data region the task names (RDMA Get via
   DART);
4. execute the in-transit computation — the *real* Python computation runs
   so results are genuine, while the DES clock advances by the cost-model
   time for the full-scale run;
5. publish the result and loop.

The bucket stops when it receives the ``StagingBucket.SHUTDOWN`` sentinel
task.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.costmodel.models import CostModel
from repro.des import Engine
from repro.obs.tracer import get_tracer
from repro.staging.descriptors import TaskDescriptor, TaskResult
from repro.staging.scheduler import TaskScheduler
from repro.transport.dart import DartTransport


class StagingBucket:
    """One in-transit worker on a named staging core."""

    SHUTDOWN = TaskDescriptor(task_id="__shutdown__", analysis="__shutdown__",
                              timestep=-1, data=[])

    def __init__(self, name: str, engine: Engine, scheduler: TaskScheduler,
                 transport: DartTransport, cost_model: CostModel | None = None,
                 rpc_latency: float = 2.0e-5,
                 on_task_done: "Any" = None) -> None:
        self.name = name
        self.engine = engine
        self.scheduler = scheduler
        self.transport = transport
        self.cost_model = cost_model
        self.rpc_latency = rpc_latency
        self.on_task_done = on_task_done
        self.results: list[TaskResult] = []
        #: (task_id, sim-time, exception repr) per failed compute attempt.
        self.failures: list[tuple[str, float, str]] = []
        self.busy_time: float = 0.0
        self._tracer = get_tracer()

    def run(self) -> Generator[Any, Any, None]:
        """The bucket's DES process body."""
        while True:
            # bucket-ready RPC costs one short-message latency.
            yield self.engine.timeout(self.rpc_latency)
            task: TaskDescriptor = yield self.scheduler.bucket_ready(self.name)
            if task.task_id == StagingBucket.SHUTDOWN.task_id:
                return
            tracer = self._tracer
            if tracer.enabled:
                span = tracer.begin(f"task:{task.task_id}", lane=self.name,
                                    category="task", analysis=task.analysis,
                                    step=task.timestep, attempt=task.attempts)
                try:
                    yield from self._execute(task)
                finally:
                    tracer.end(span)
            else:
                yield from self._execute(task)

    def _execute(self, task: TaskDescriptor) -> Generator[Any, Any, None]:
        assign_t = self.engine.now
        enqueue_t = self._enqueue_time(task, assign_t)

        value: Any = None
        if task.stream_compute is not None:
            # Streaming mode (§VI): consume each payload the moment its
            # pull completes, and *prefetch* the next pull while computing
            # — in-transit compute overlaps the remaining transfers, so
            # the task takes ~max(total pull, total compute) instead of
            # their sum.
            state: Any = None
            pending = (self.engine.process(self._pull_proc(task.data[0]),
                                           name=f"{self.name}:pull0")
                       if task.data else None)
            for i in range(len(task.data)):
                payload = yield pending
                if i + 1 < len(task.data):
                    pending = self.engine.process(
                        self._pull_proc(task.data[i + 1]),
                        name=f"{self.name}:pull{i + 1}")
                state = task.stream_compute(state, payload)
                if task.stream_cost_per_payload:
                    yield self.engine.timeout(task.stream_cost_per_payload)
            pull_done_t = self.engine.now
            value = (task.stream_finalize(state)
                     if task.stream_finalize is not None else state)
        else:
            # With retries enabled, producers' regions stay registered so a
            # re-assigned bucket can pull them again (released on success
            # or final failure).
            retain = task.max_retries > 0
            payloads: list[Any] = []
            for desc in task.data:
                payload = yield from self.transport.pull(desc, self.name,
                                                         release=not retain)
                payloads.append(payload)
            pull_done_t = self.engine.now
            if task.compute is not None:
                try:
                    value = task.compute(payloads)
                except Exception as exc:  # noqa: BLE001 — fault isolation
                    task.attempts += 1
                    self.failures.append((task.task_id, self.engine.now,
                                          repr(exc)))
                    if self._tracer.enabled:
                        self._tracer.counter("bucket.compute_failures")
                        self._tracer.instant("bucket.failure", lane=self.name,
                                             task_id=task.task_id,
                                             error=repr(exc))
                    if task.attempts <= task.max_retries:
                        if self._tracer.enabled:
                            self._tracer.counter("bucket.retries")
                        self.scheduler.data_ready(task)
                        return
                    if retain:
                        for desc in task.data:
                            self.transport.release(desc)
                    if self.on_task_done is not None:
                        self.on_task_done(None)
                    raise
            if retain:
                for desc in task.data:
                    self.transport.release(desc)
        if task.cost_op is not None:
            if self.cost_model is None:
                raise RuntimeError(
                    f"task {task.task_id!r} charges op {task.cost_op!r} but "
                    f"bucket {self.name!r} has no cost model"
                )
            yield self.engine.timeout(
                self.cost_model.time(task.cost_op, task.cost_elements))
        finish_t = self.engine.now

        if self._tracer.enabled:
            # Compute charge (real compute + cost-model time) as an
            # explicit-time span nested inside the lane's task span.
            self._tracer.add_span(f"intransit:{task.analysis}", lane=self.name,
                                  t_start=pull_done_t, t_end=finish_t,
                                  category="compute", stage="intransit",
                                  analysis=task.analysis, step=task.timestep,
                                  task_id=task.task_id)
            self._tracer.counter("bucket.tasks_done")
            self._tracer.counter("bucket.bytes_consumed", task.total_bytes)
            self._tracer.metrics.histogram("bucket.task_time").observe(
                finish_t - assign_t)

        self.busy_time += finish_t - assign_t
        result = TaskResult(
            task_id=task.task_id, analysis=task.analysis, timestep=task.timestep,
            bucket=self.name, value=value,
            enqueue_time=enqueue_t, assign_time=assign_t,
            pull_done_time=pull_done_t, finish_time=finish_t,
            bytes_pulled=task.total_bytes,
        )
        self.results.append(result)
        if self.on_task_done is not None:
            self.on_task_done(result)

    def _pull_proc(self, desc) -> Generator[Any, Any, Any]:
        """Wrap one pull as a joinable DES process (streaming prefetch)."""
        payload = yield from self.transport.pull(desc, self.name)
        return payload

    def _enqueue_time(self, task: TaskDescriptor, default: float) -> float:
        for rec in reversed(self.scheduler.assignments):
            if rec.task_id == task.task_id:
                return rec.data_ready_time
        return default
