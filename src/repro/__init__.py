"""repro — hybrid in-situ/in-transit scientific analysis.

A complete Python reproduction of Bennett et al., *Combining In-situ and
In-transit Processing to Enable Extreme-Scale Scientific Analysis*
(SC 2012, DOI 10.1109/SC.2012.31). See README.md for the architecture and
DESIGN.md for the reproduction methodology.

Top-level convenience re-exports cover the high-level public API; the
subpackages (:mod:`repro.core`, :mod:`repro.analysis`, :mod:`repro.sim`,
:mod:`repro.staging`, :mod:`repro.transport`, :mod:`repro.machine`,
:mod:`repro.costmodel`, :mod:`repro.io`, :mod:`repro.vmpi`,
:mod:`repro.des`) expose the full surface.
"""

from repro.core import (
    AnalyticsVariant,
    ExperimentConfig,
    HybridFramework,
    ScaledExperiment,
)
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.vmpi import BlockDecomposition3D

__version__ = "0.1.0"

__all__ = [
    "AnalyticsVariant",
    "ExperimentConfig",
    "HybridFramework",
    "ScaledExperiment",
    "LiftedFlameCase",
    "S3DProxy",
    "StructuredGrid3D",
    "BlockDecomposition3D",
    "__version__",
]
