"""Resilience experiment: a staging workload under injected faults.

Drives a synthetic in-transit workload (one grouped task per analysis
step, real NumPy payloads with full-scale wire sizes) through the complete
recovery stack and reports what happened: completion time, the exact task
ledger (completed + failed == submitted), retries, lease reassignments,
supervisor restarts and degraded-mode activity. ``python -m repro faults``
sweeps fault rates and prints one row per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.des import Engine
from repro.faults.injector import FaultConfig, FaultInjector
from repro.staging.dataspaces import DataSpaces
from repro.transport.dart import DartTransport


@dataclass
class ResilienceReport:
    """Outcome of one resilience run."""

    config: FaultConfig
    n_tasks: int
    n_buckets: int
    makespan: float
    accounting: dict[str, int]
    #: Failed attempts that were requeued (retry path).
    retries: int
    #: Tasks pulled back from dead buckets by lease expiry.
    reassignments: int
    #: Crash→requeue latency per reassignment (one lease period + epsilon).
    recovery_delays: list[float] = field(default_factory=list)
    restarts: int = 0
    degraded: bool = False
    fallback_tasks: int = 0
    crashes_injected: int = 0
    pull_failures_injected: int = 0
    pull_stalls_injected: int = 0
    #: Every completed task produced the analytically expected value.
    values_ok: bool = True

    @property
    def drained(self) -> bool:
        return self.accounting["outstanding"] == 0

    @property
    def all_accounted(self) -> bool:
        acct = self.accounting
        return (acct["completed"] + acct["failed"] == acct["submitted"]
                and acct["outstanding"] == 0)

    @property
    def mttr(self) -> float:
        """Mean time to recovery: crash-to-requeue latency averaged over
        the lease reassignments (0.0 when nothing needed recovering)."""
        if not self.recovery_delays:
            return 0.0
        return sum(self.recovery_delays) / len(self.recovery_delays)

    def to_metrics(self, prefix: str = "faults") -> dict[str, float]:
        """The report reduced to the canonical run-record metric schema
        (see :mod:`repro.obs.perf`): every figure the regression gate and
        the dashboard's fault-recovery panel track across runs."""
        return {
            f"{prefix}.makespan_s": self.makespan,
            f"{prefix}.mttr_s": self.mttr,
            f"{prefix}.reassignments": float(self.reassignments),
            f"{prefix}.retries": float(self.retries),
            f"{prefix}.restarts": float(self.restarts),
            f"{prefix}.fallback_tasks": float(self.fallback_tasks),
            f"{prefix}.crashes": float(self.crashes_injected),
            f"{prefix}.terminal_failures": float(self.accounting["failed"]),
        }


def run_resilience_experiment(config: FaultConfig | None = None,
                              n_tasks: int = 32,
                              n_buckets: int = 4,
                              regions_per_task: int = 4,
                              region_nbytes: int = 4 << 20,
                              submit_interval: float = 2.0e-3,
                              max_retries: int = 3,
                              lease_timeout: float = 5.0e-3,
                              pull_max_attempts: int = 4,
                              pull_backoff_base: float | None = None,
                              bucket_restart_delay: float | None = None,
                              max_bucket_restarts: int = 0,
                              ) -> ResilienceReport:
    """Run one fault scenario and return its :class:`ResilienceReport`.

    The workload submits ``n_tasks`` grouped tasks, one every
    ``submit_interval`` simulated seconds; each pulls
    ``regions_per_task`` regions of ``region_nbytes`` wire bytes and sums
    them in-transit, so every completed value is checkable analytically.
    """
    config = config or FaultConfig()
    engine = Engine()
    transport_kwargs = {}
    if pull_backoff_base is not None:
        transport_kwargs["pull_backoff_base"] = pull_backoff_base
    transport = DartTransport(engine, pull_max_attempts=pull_max_attempts,
                              **transport_kwargs)
    ds = DataSpaces(engine, transport, n_servers=2,
                    lease_timeout=lease_timeout,
                    bucket_restart_delay=bucket_restart_delay,
                    max_bucket_restarts=max_bucket_restarts)
    ds.spawn_buckets([f"staging-{i}" for i in range(n_buckets)])
    injector = FaultInjector(engine, config).attach(ds)

    expected: dict[str, float] = {}

    def compute(payloads: list[np.ndarray]) -> float:
        return float(sum(p.sum() for p in payloads))

    def driver():
        for i in range(n_tasks):
            payloads = [np.full(64, float(i * regions_per_task + j))
                        for j in range(regions_per_task)]
            descs = [transport.register(f"sim-{j}", payload,
                                        nbytes=region_nbytes,
                                        meta={"analysis": "resilience",
                                              "timestep": i})
                     for j, payload in enumerate(payloads)]
            task = ds.submit_grouped_result(
                "resilience", i, descs, compute=compute,
                max_retries=max_retries)
            expected[task.task_id] = float(sum(p.sum() for p in payloads))
            yield engine.timeout(submit_interval)

    engine.process(driver(), name="driver")
    ds.shutdown_buckets()
    engine.run()

    results = ds.all_results()
    failure_times = [t for b in ds.buckets for (_tid, t, _e) in b.failures]
    makespan = max(
        [r.finish_time for r in results] + failure_times + [0.0])
    terminal = len(ds.failed_task_ids())
    attempts_failed = sum(len(b.failures) for b in ds.buckets)
    values_ok = all(
        r.value == expected[r.task_id]
        for r in results if r.task_id in expected)
    sched = ds.scheduler
    return ResilienceReport(
        config=config,
        n_tasks=n_tasks,
        n_buckets=n_buckets,
        makespan=makespan,
        accounting=ds.task_accounting(),
        retries=attempts_failed - terminal,
        reassignments=len(sched.reassignments),
        recovery_delays=[rec.requeue_time - rec.assign_time
                         for rec in sched.reassignments],
        restarts=ds.restarts_used,
        degraded=ds.degraded,
        fallback_tasks=len(ds.fallback_results),
        crashes_injected=injector.count("crash"),
        pull_failures_injected=injector.count("pull_failure"),
        pull_stalls_injected=injector.count("pull_stall"),
        values_ok=values_ok,
    )
