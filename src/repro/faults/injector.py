"""Seeded, deterministic fault injection against the DES clock.

The injector perturbs a staging workflow in three ways, mirroring the
failure classes a real staging deployment sees:

* **bucket crashes** — a staging core's worker process is interrupted at a
  scheduled simulated time (explicit ``crash_times`` and/or a Poisson
  process at ``crash_rate`` over ``horizon``); recovery is lease-based
  reassignment, supervisor restarts, or the degraded in-situ fallback;
* **pull failures** — an RDMA Get attempt raises
  :class:`~repro.transport.dart.PullFault` with probability
  ``pull_failure_rate``; the transport retries with exponential backoff;
* **transfer stalls** — an attempt is slowed by ``pull_stall_seconds``
  with probability ``pull_stall_rate`` (the wire occupies both NICs for
  the extra time).

Determinism: all randomness flows from one
:func:`repro.util.rng.seeded_rng` generator, and the DES engine dispatches
ties in insertion order, so a given (seed, workload) pair replays the
identical fault sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.des import Engine
from repro.obs.tracer import get_tracer
from repro.staging.dataspaces import DataSpaces
from repro.transport.dart import PullFault
from repro.transport.messages import DataDescriptor
from repro.util.rng import seeded_rng


@dataclass(frozen=True)
class FaultConfig:
    """What to inject, and when. All rates default to "no faults"."""

    seed: int = 0
    #: Explicit bucket-crash times (simulated seconds).
    crash_times: tuple[float, ...] = ()
    #: Expected crashes per simulated second (Poisson), sampled over
    #: ``horizon``; 0 disables rate-driven crashes.
    crash_rate: float = 0.0
    #: Sampling horizon (simulated seconds) for ``crash_rate``.
    horizon: float = 0.0
    #: Probability that one pull attempt raises :class:`PullFault`.
    pull_failure_rate: float = 0.0
    #: Probability that one pull attempt stalls.
    pull_stall_rate: float = 0.0
    #: Extra wire seconds charged to a stalled attempt.
    pull_stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.pull_failure_rate <= 1.0:
            raise ValueError(
                f"pull_failure_rate must be in [0, 1], got {self.pull_failure_rate}")
        if not 0.0 <= self.pull_stall_rate <= 1.0:
            raise ValueError(
                f"pull_stall_rate must be in [0, 1], got {self.pull_stall_rate}")
        if self.pull_stall_seconds < 0:
            raise ValueError("pull_stall_seconds must be >= 0")
        if self.crash_rate < 0:
            raise ValueError("crash_rate must be >= 0")
        if self.crash_rate > 0 and self.horizon <= 0:
            raise ValueError("crash_rate > 0 needs a positive horizon")
        if any(t < 0 for t in self.crash_times):
            raise ValueError("crash_times must be >= 0")

    @property
    def injects_crashes(self) -> bool:
        return bool(self.crash_times) or self.crash_rate > 0

    @property
    def injects_pull_faults(self) -> bool:
        return self.pull_failure_rate > 0 or self.pull_stall_rate > 0


@dataclass
class InjectedFault:
    """One fault the injector actually delivered."""

    kind: str  # "crash" | "pull_failure" | "pull_stall"
    time: float
    target: str
    detail: dict[str, Any] = field(default_factory=dict)


class FaultInjector:
    """Arms a :class:`DataSpaces` workflow with a deterministic fault plan."""

    def __init__(self, engine: Engine, config: FaultConfig) -> None:
        self.engine = engine
        self.config = config
        self.rng = seeded_rng(config.seed)
        #: Every fault delivered, in delivery order.
        self.injected: list[InjectedFault] = []
        self._dataspaces: DataSpaces | None = None
        self._tracer = get_tracer()

    # -- wiring ---------------------------------------------------------------

    def attach(self, dataspaces: DataSpaces) -> "FaultInjector":
        """Install hooks and schedule the crash plan.

        Call after ``spawn_buckets`` and before ``engine.run``. Requires
        scheduler leases when crashes are injected — without leases a task
        held by a crashed bucket would be lost and ``drained()`` could
        never fire.
        """
        if self._dataspaces is not None:
            raise RuntimeError("injector already attached")
        cfg = self.config
        if (cfg.injects_crashes
                and dataspaces.scheduler.lease_timeout is None):
            raise ValueError(
                "crash injection requires DataSpaces(lease_timeout=...): "
                "without leases an in-flight task on a crashed bucket is "
                "unrecoverable")
        self._dataspaces = dataspaces
        if cfg.injects_pull_faults:
            dataspaces.transport.pull_fault_hook = self._pull_hook
        for when in sorted(self._plan_crash_times()):
            self.engine.call_at(max(when, self.engine.now),
                                lambda when=when: self._crash_one(when))
        return self

    def _plan_crash_times(self) -> list[float]:
        times = list(self.config.crash_times)
        if self.config.crash_rate > 0:
            t = 0.0
            while True:
                t += float(self.rng.exponential(1.0 / self.config.crash_rate))
                if t >= self.config.horizon:
                    break
                times.append(t)
        return times

    # -- delivery -------------------------------------------------------------

    def _crash_one(self, when: float) -> None:
        ds = self._dataspaces
        alive = [b for b in ds.buckets if not b.dead]
        if not alive:
            return  # staging already fully down
        victim = alive[int(self.rng.integers(len(alive)))]
        self.injected.append(InjectedFault("crash", self.engine.now,
                                           victim.name))
        if self._tracer.enabled:
            self._tracer.counter("faults.bucket_crashes")
            self._tracer.instant("faults.crash", lane="faults",
                                 bucket=victim.name)
        ds.crash_bucket(victim.name, cause=f"injected crash @ {when:.6f}s")

    def _pull_hook(self, descriptor: DataDescriptor, dest_node: str,
                   attempt: int) -> float:
        cfg = self.config
        if cfg.pull_failure_rate and self.rng.random() < cfg.pull_failure_rate:
            self.injected.append(InjectedFault(
                "pull_failure", self.engine.now, dest_node,
                {"region": descriptor.region_id, "attempt": attempt}))
            if self._tracer.enabled:
                self._tracer.counter("faults.pull_failures")
            raise PullFault(
                f"injected pull failure of {descriptor.region_id!r} "
                f"into {dest_node!r} (attempt {attempt})")
        if cfg.pull_stall_rate and self.rng.random() < cfg.pull_stall_rate:
            self.injected.append(InjectedFault(
                "pull_stall", self.engine.now, dest_node,
                {"region": descriptor.region_id,
                 "stall": cfg.pull_stall_seconds}))
            if self._tracer.enabled:
                self._tracer.counter("faults.pull_stalls")
            return cfg.pull_stall_seconds
        return 0.0

    # -- introspection --------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for f in self.injected if f.kind == kind)
