"""Deterministic fault injection and resilience experiments.

The paper's case for in-transit staging (§IV) assumes staging nodes and
RDMA transfers can misbehave without taking the simulation down. This
package exercises that assumption:

* :class:`~repro.faults.injector.FaultConfig` /
  :class:`~repro.faults.injector.FaultInjector` — a seeded injector that
  schedules staging-bucket crashes against the DES clock and arms the
  transport's pull fault hook with probabilistic RDMA failures and
  transfer stalls. Same seed + same workload ⇒ identical fault sequence.
* :func:`~repro.faults.experiment.run_resilience_experiment` — a synthetic
  staging workload driven under injected faults, reporting completion
  time, the exact task ledger, retries, lease reassignments, restarts and
  degraded-mode activity (``python -m repro faults``).

Recovery machinery lives with the components it protects: cancellable
timeouts and ``Engine.any_of`` in :mod:`repro.des`, pull backoff in
:mod:`repro.transport.dart`, per-assignment leases in
:mod:`repro.staging.scheduler`, and the bucket supervisor plus degraded
in-situ fallback in :mod:`repro.staging.dataspaces`.
"""

from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.experiment import ResilienceReport, run_resilience_experiment

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "ResilienceReport",
    "run_resilience_experiment",
]
