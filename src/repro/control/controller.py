"""Online adaptive in-situ/in-transit placement controller.

The paper fixes the split between in-situ and in-transit stages per
analysis for the whole run; §V motivates concurrent analysis precisely
because it enables steering. This module closes that loop: a
:class:`PlacementController` rides a :meth:`ScaledExperiment.run_schedule
<repro.core.runner.ScaledExperiment.run_schedule>` replay, samples the
standard probes (queue depth, busy buckets, NIC occupancy) into windowed
series, decomposes the window's completed in-transit tasks into
queue-wait / transport / compute shares (the same axes as
:func:`repro.obs.blame.blame`), and every ``window`` analysed steps
re-decides

* **pool size** — elastically grows or shrinks the staging-bucket pool
  through :meth:`DataSpaces.scale_to
  <repro.staging.dataspaces.DataSpaces.scale_to>`, bounded by the
  experiment's ``staging_memory_needed``;
* **placement** — pulls a movable analysis' in-transit stage in-situ when
  transport + queue-wait dominate its latency and the pool can grow no
  further, and pushes it back in-transit once the in-situ share of the
  simulation timeline breaches the SLO budget.

Every effective decision is recorded to the shared space (name
``"controller"``), exactly the way steering events are, and mirrored to
``controller.*`` metrics. All inputs are DES-deterministic — two runs
with the same seed produce byte-identical decision logs.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.control.hysteresis import Cooldown
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runner import ScaledExperiment
    from repro.staging.dataspaces import DataSpaces

#: Placement states of an analysis' completion stage.
PLACE_INTRANSIT = "intransit"
PLACE_INSITU = "insitu"

#: Analyses whose completion stage the controller may move by default:
#: topology's serial merge-tree glue is the paper's textbook candidate —
#: its intermediate data is small but its in-transit latency is long.
DEFAULT_MOVABLE = ("hybrid in-situ/in-transit topology",)


@dataclass(frozen=True)
class ControlPolicy:
    """Knobs of the adaptive controller (all thresholds deterministic)."""

    #: Re-decide every this many analysed steps.
    window: int = 2
    #: Grow the pool when the queue holds more than this many tasks per
    #: committed bucket at a window boundary…
    backlog_per_bucket: float = 1.0
    #: …or when queue-wait exceeds this share of the window's task latency.
    grow_queue_share: float = 0.5
    #: Buckets added (or retired) per pool decision.
    grow_step: int = 2
    #: Shrink when the queue is empty and at least this fraction of the
    #: committed pool sat idle at the window boundary.
    shrink_idle_frac: float = 0.95
    #: Floor for scale-down; None = the run's initial bucket count (the
    #: default controller never shrinks below the configured split).
    min_buckets: int | None = None
    #: Hard ceiling for scale-up; None = 4x the initial bucket count,
    #: further bounded by ``memory_budget_bytes``.
    max_buckets: int | None = None
    #: Staging-memory bound inverted through ``staging_memory_needed``;
    #: None = the memory a ``max_buckets``-sized pool would need (i.e.
    #: the cap is the bucket ceiling, explicitly memory-priced).
    memory_budget_bytes: int | None = None
    #: Pull an analysis in-situ when transport+queue-wait reach this share
    #: of its window latency and the pool cannot grow further.
    pull_threshold: float = 0.75
    #: Push it back in-transit when in-situ work exceeds this share of the
    #: simulation timeline (the probe layer's in-situ SLO axis).
    insitu_budget: float = 0.5
    #: Windows between successive decisions of the same actuator — the
    #: shared :class:`~repro.control.hysteresis.Cooldown` hysteresis.
    cooldown_windows: int = 2
    #: ``AnalyticsVariant.value`` names the controller may re-place.
    movable: tuple[str, ...] = DEFAULT_MOVABLE
    #: Clamp pool growth by the capacity ledger's *measured* per-bucket
    #: footprint (not just the analytic model): the ledger is always
    #: bound by ``begin_run``; this knob arms the clamp. Off by default
    #: so committed decision-log baselines predate the ledger exactly.
    measured_budget: bool = False

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.grow_step < 1:
            raise ValueError(f"grow_step must be >= 1, got {self.grow_step}")
        for name in ("grow_queue_share", "shrink_idle_frac",
                     "pull_threshold", "insitu_budget"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0")


@dataclass(frozen=True)
class WindowSignals:
    """One decision window's observed state (the controller's inputs)."""

    window: int
    t_start: float
    t_end: float
    #: Live probe reads at the window boundary.
    queue_depth: float
    idle_buckets: float
    live_buckets: int
    nic_busy: float
    #: In-transit tasks that finished inside the window.
    n_results: int
    #: Shares of the window's summed task latency (blame axes).
    queue_wait_share: float
    transport_share: float
    compute_share: float
    #: In-situ seconds over simulation-timeline seconds this window.
    insitu_share: float
    #: Per-analysis (queue_wait + transport) share of its own latency.
    analysis_pressure: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "queue_depth": self.queue_depth,
            "idle_buckets": self.idle_buckets,
            "live_buckets": self.live_buckets,
            "nic_busy": self.nic_busy,
            "n_results": self.n_results,
            "queue_wait_share": self.queue_wait_share,
            "transport_share": self.transport_share,
            "compute_share": self.compute_share,
            "insitu_share": self.insitu_share,
            "analysis_pressure": dict(sorted(self.analysis_pressure.items())),
        }


@dataclass(frozen=True)
class PlacementDecision:
    """One effective controller decision (recorded to the shared space)."""

    seq: int
    window: int
    t: float
    #: ``"pool"`` (scale the bucket pool) or ``"placement"`` (move an
    #: analysis between in-transit and in-situ).
    kind: str
    #: The bucket pool, or the analysis name being moved.
    subject: str
    before: str
    after: str
    reason: str
    signals: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "window": self.window,
            "t": self.t,
            "kind": self.kind,
            "subject": self.subject,
            "before": self.before,
            "after": self.after,
            "reason": self.reason,
            "signals": self.signals,
        }


class PlacementController:
    """Windowed feedback controller over a ``run_schedule`` replay.

    Bind it to a run with :meth:`begin_run` (``run_schedule(controller=)``
    does this), then the driver calls :meth:`note_step` per analysed step
    and :meth:`on_window` at every window boundary. State is fully reset
    by ``begin_run``, so one instance can replay many runs.
    """

    def __init__(self, policy: ControlPolicy | None = None) -> None:
        self.policy = policy or ControlPolicy()
        self.decisions: list[PlacementDecision] = []
        self.placements: dict[Any, str] = {}
        #: (time, committed pool size) after every window and decision.
        self.pool_trajectory: list[tuple[float, int]] = []
        #: Windowed probe series sampled at decision boundaries:
        #: ``{probe name: [(t, value), ...]}``.
        self.probe_series: dict[str, list[tuple[float, float]]] = {}
        self.signal_history: list[WindowSignals] = []
        self.max_buckets = 0
        self.min_buckets = 0
        #: Capacity ledger bound by :meth:`begin_run` (or None).
        self.capacity: Any | None = None
        self._ds: DataSpaces | None = None
        self._movable: tuple[Any, ...] = ()
        self.memory_budget_bytes = 0
        self._probe_map: Mapping[str, Callable[[], float]] = {}
        self._window = 0
        self._t_prev = 0.0
        self._win_sim = 0.0
        self._win_insitu = 0.0
        self._pool_cd = Cooldown(self.policy.cooldown_windows)
        self._place_cd: dict[Any, Cooldown] = {}

    # -- run binding ---------------------------------------------------------

    def begin_run(self, *, experiment: "ScaledExperiment",
                  ds: "DataSpaces", analyses: tuple[Any, ...],
                  n_buckets: int, analysis_interval: int,
                  probe_map: Mapping[str, Callable[[], float]] | None = None,
                  capacity: Any | None = None) -> None:
        """Reset all state and bind the controller to one replay.

        ``capacity`` (a :class:`repro.obs.capacity.CapacityLedger`, or
        None) feeds the pool decisions *measured* staging-memory
        budgets: growth is additionally clamped so the ledger-observed
        per-bucket footprint times the target pool stays inside the
        memory budget. When the measurement agrees with (or beats) the
        analytic model the clamp is a no-op, so clean decision logs are
        unchanged; it bites exactly when the model under-estimated.
        """
        pol = self.policy
        self._ds = ds
        self.capacity = capacity
        self._probe_map = dict(probe_map or {})
        self.decisions = []
        self.signal_history = []
        self.probe_series = {name: [] for name in self._probe_map}
        self.placements = {v: PLACE_INTRANSIT for v in analyses}
        self._movable = tuple(v for v in analyses if v.value in pol.movable)
        self._place_cd = {v: Cooldown(pol.cooldown_windows)
                          for v in self._movable}
        self._pool_cd = Cooldown(pol.cooldown_windows)
        self._window = 0
        self._t_prev = 0.0
        self._win_sim = 0.0
        self._win_insitu = 0.0
        self.min_buckets = (pol.min_buckets if pol.min_buckets is not None
                            else n_buckets)
        hard_cap = (pol.max_buckets if pol.max_buckets is not None
                    else 4 * n_buckets)
        budget = pol.memory_budget_bytes
        if budget is None:
            budget = experiment.staging_memory_needed(analysis_interval,
                                                      hard_cap)
        self.memory_budget_bytes = budget
        self.max_buckets = max(
            (n for n in range(1, hard_cap + 1)
             if experiment.staging_memory_needed(analysis_interval, n)
             <= budget),
            default=1)
        self.pool_trajectory = [(0.0, n_buckets)]

    # -- per-step accounting (called by the driver) --------------------------

    def note_step(self, sim_seconds: float, insitu_seconds: float) -> None:
        """Account one analysed step's simulation-timeline split."""
        self._win_sim += sim_seconds
        self._win_insitu += insitu_seconds

    def insitu_placed(self) -> list[Any]:
        """Analyses whose completion stage currently runs in-situ."""
        return [v for v, p in self.placements.items() if p == PLACE_INSITU]

    # -- window boundary ------------------------------------------------------

    def on_window(self, now: float) -> None:
        """Observe the closing window and apply any due decisions."""
        self._window += 1
        for name, fn in self._probe_map.items():
            self.probe_series[name].append((now, float(fn())))
        sig = self._signals(now)
        self.signal_history.append(sig)
        self._mirror_metrics(sig)
        self._decide_pool(sig)
        self._decide_placement(sig)
        self.pool_trajectory.append((now, self._ds.committed_buckets()))
        self._t_prev = now
        self._win_sim = 0.0
        self._win_insitu = 0.0

    def _signals(self, now: float) -> WindowSignals:
        ds = self._ds
        results = [r for r in ds.all_results()
                   if self._t_prev < r.finish_time <= now]
        qw = sum(r.assign_time - r.enqueue_time for r in results)
        tr = sum(r.pull_done_time - r.assign_time for r in results)
        cp = sum(r.finish_time - r.pull_done_time for r in results)
        total = qw + tr + cp
        pressure: dict[str, float] = {}
        for analysis in {r.analysis for r in results}:
            rs = [r for r in results if r.analysis == analysis]
            lat = sum(r.finish_time - r.enqueue_time for r in rs)
            moved = sum((r.assign_time - r.enqueue_time)
                        + (r.pull_done_time - r.assign_time) for r in rs)
            pressure[analysis] = moved / lat if lat > 0 else 0.0
        timeline = self._win_sim + self._win_insitu
        return WindowSignals(
            window=self._window, t_start=self._t_prev, t_end=now,
            queue_depth=float(ds.scheduler.pending_tasks),
            idle_buckets=float(ds.scheduler.idle_buckets),
            live_buckets=ds.live_buckets(),
            nic_busy=float(self._probe_map["nic.busy_channels"]())
            if "nic.busy_channels" in self._probe_map else 0.0,
            n_results=len(results),
            queue_wait_share=qw / total if total > 0 else 0.0,
            transport_share=tr / total if total > 0 else 0.0,
            compute_share=cp / total if total > 0 else 0.0,
            insitu_share=self._win_insitu / timeline if timeline > 0 else 0.0,
            analysis_pressure=pressure,
        )

    # -- decisions -----------------------------------------------------------

    def _decide_pool(self, sig: WindowSignals) -> None:
        pol = self.policy
        committed = self._ds.committed_buckets()
        backlogged = (sig.queue_depth > pol.backlog_per_bucket
                      * max(1, committed)
                      or (sig.n_results > 0
                          and sig.queue_wait_share >= pol.grow_queue_share))
        if backlogged:
            target = min(committed + pol.grow_step, self.max_buckets)
            if pol.measured_budget:
                measured_cap = self._measured_bucket_cap(committed)
                if measured_cap is not None:
                    target = min(target, max(committed, measured_cap))
            if target > committed and self._pool_cd.ready(self._window):
                self._pool_cd.fire(self._window)
                self._ds.scale_to(target)
                self._record(
                    "pool", "staging-pool", str(committed), str(target),
                    f"queue backlog ({sig.queue_depth:.0f} tasks, "
                    f"queue-wait share {sig.queue_wait_share:.2f}) — "
                    f"grow within memory bound ({self.max_buckets} max)",
                    sig)
            return
        if (sig.queue_depth == 0 and committed > self.min_buckets
                and sig.idle_buckets >= pol.shrink_idle_frac * committed):
            target = max(self.min_buckets, committed - pol.grow_step)
            if target < committed and self._pool_cd.ready(self._window):
                self._pool_cd.fire(self._window)
                self._ds.scale_to(target)
                self._record(
                    "pool", "staging-pool", str(committed), str(target),
                    f"idle pool ({sig.idle_buckets:.0f}/{committed} free, "
                    f"empty queue) — retire toward floor "
                    f"({self.min_buckets})",
                    sig)

    def _measured_bucket_cap(self, committed: int) -> int | None:
        """Largest pool the *measured* per-bucket footprint affords.

        Uses the capacity ledger's running peak resident bytes divided
        over the committed pool as the per-bucket footprint estimate;
        returns None without a ledger (or before any bytes registered),
        leaving the analytic bound in charge.
        """
        ledger = self.capacity
        if ledger is None or committed < 1:
            return None
        peak = ledger.peak_resident_bytes
        if peak <= 0:
            return None
        per_bucket = -(-peak // committed)  # ceil division, exact ints
        return max(1, int(self.memory_budget_bytes // per_bucket))

    def _decide_placement(self, sig: WindowSignals) -> None:
        pol = self.policy
        committed = self._ds.committed_buckets()
        for variant in self._movable:
            cd = self._place_cd[variant]
            if not cd.ready(self._window):
                continue
            placed = self.placements[variant]
            if placed == PLACE_INTRANSIT:
                share = sig.analysis_pressure.get(variant.value)
                if (share is not None and share >= pol.pull_threshold
                        and committed >= self.max_buckets):
                    cd.fire(self._window)
                    self.placements[variant] = PLACE_INSITU
                    self._record(
                        "placement", variant.value,
                        PLACE_INTRANSIT, PLACE_INSITU,
                        f"transport+queue-wait at {share:.2f} of its "
                        f"latency with the pool at its memory bound — "
                        f"run the completion stage in-situ",
                        sig)
            elif sig.insitu_share > pol.insitu_budget:
                cd.fire(self._window)
                self.placements[variant] = PLACE_INTRANSIT
                self._record(
                    "placement", variant.value,
                    PLACE_INSITU, PLACE_INTRANSIT,
                    f"in-situ share {sig.insitu_share:.2f} breaches the "
                    f"{pol.insitu_budget:.2f} budget — move the stage "
                    f"back in-transit",
                    sig)

    # -- recording -----------------------------------------------------------

    def _record(self, kind: str, subject: str, before: str, after: str,
                reason: str, sig: WindowSignals) -> None:
        decision = PlacementDecision(
            seq=len(self.decisions), window=sig.window, t=sig.t_end,
            kind=kind, subject=subject, before=before, after=after,
            reason=reason, signals=sig.to_dict())
        self.decisions.append(decision)
        # Shared-space decision history, the way steering events are kept.
        self._ds.put("controller", len(self.decisions), decision)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("controller.decisions")
            if kind == "pool":
                grew = int(after) > int(before)
                tracer.counter("controller.pool_grow" if grew
                               else "controller.pool_shrink")
            else:
                tracer.counter("controller.push_intransit"
                               if after == PLACE_INTRANSIT
                               else "controller.pull_insitu")
            tracer.instant("controller.decision", lane="controller",
                           kind=kind, subject=subject, before=before,
                           after=after, window=sig.window)
            if tracer.bus is not None:
                ctx = tracer.context_tags()
                tracer.bus.publish(
                    "decision", f"controller.{kind}", t=sig.t_end,
                    lane="controller", tenant=ctx.get("tenant"),
                    job_id=ctx.get("job"), subject=subject, before=before,
                    after=after, window=sig.window,
                    message=f"{kind} {subject}: {before} -> {after} "
                            f"({reason})")

    def _mirror_metrics(self, sig: WindowSignals) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        m = tracer.metrics
        m.gauge("controller.queue_wait_share").set(sig.queue_wait_share)
        m.gauge("controller.transport_share").set(sig.transport_share)
        m.gauge("controller.insitu_share").set(sig.insitu_share)
        m.gauge("controller.pool_size").set(self._ds.committed_buckets())
        m.gauge("controller.queue_depth").set(sig.queue_depth)

    # -- reporting -----------------------------------------------------------

    def decision_log(self) -> list[dict[str, Any]]:
        """The decision history as plain dicts (JSON-serializable)."""
        return [d.to_dict() for d in self.decisions]

    def decision_log_json(self) -> str:
        """Canonical JSON of the decision log — byte-identical across
        same-seed runs (every input is DES-deterministic)."""
        return json.dumps(self.decision_log(), sort_keys=True, indent=2)
