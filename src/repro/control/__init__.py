"""Online adaptive control of the in-situ/in-transit split.

The closed feedback loop over the paper's hybrid workflow: windowed probe
and blame signals in, placement and pool-size decisions out, actuated at
DES time. See :mod:`repro.control.controller` for the loop itself,
:mod:`repro.control.hysteresis` for the damping primitive shared with the
steering rules, and :mod:`repro.control.scenario` for the fault-injected
adaptive-vs-static comparison.
"""

from repro.control.controller import (DEFAULT_MOVABLE, PLACE_INSITU,
                                      PLACE_INTRANSIT, ControlPolicy,
                                      PlacementController, PlacementDecision,
                                      WindowSignals)
from repro.control.hysteresis import Cooldown
from repro.control.scenario import ControlReport, run_control_scenario

__all__ = [
    "DEFAULT_MOVABLE",
    "PLACE_INSITU",
    "PLACE_INTRANSIT",
    "ControlPolicy",
    "ControlReport",
    "Cooldown",
    "PlacementController",
    "PlacementDecision",
    "WindowSignals",
    "run_control_scenario",
]
