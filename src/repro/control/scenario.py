"""Adaptive-vs-static comparison under an injected fault plan.

The controller's value proposition is testable: run the same fault plan
(bucket crashes + RDMA stalls) twice — once with the paper's static
split, once with the :class:`~repro.control.controller.PlacementController`
— and compare makespans. Crashes permanently shrink a static pool (the
budgeted supervisor is off by default), so queue waits compound step
after step; the controller observes the backlog in its window signals and
scales the pool back up at DES time, recovering the lost throughput.
Everything is seeded, so the comparison — and the decision log — is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.control.controller import ControlPolicy, PlacementController
from repro.faults.injector import FaultConfig


@dataclass
class ControlReport:
    """Outcome of one adaptive-vs-static fault scenario."""

    static_makespan: float
    adaptive_makespan: float
    static_max_queue_wait: float
    adaptive_max_queue_wait: float
    controller: PlacementController
    static_result: Any = field(repr=False, default=None)
    adaptive_result: Any = field(repr=False, default=None)
    config: dict[str, Any] = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        """True when the adaptive run met or beat the static makespan."""
        return self.adaptive_makespan <= self.static_makespan

    @property
    def speedup(self) -> float:
        """Static over adaptive makespan (> 1 means the controller won)."""
        if self.adaptive_makespan <= 0:
            return 1.0
        return self.static_makespan / self.adaptive_makespan

    def to_metrics(self, prefix: str = "controller") -> dict[str, float]:
        """Flatten to perf-dashboard metrics."""
        return {
            f"{prefix}.static_makespan_s": self.static_makespan,
            f"{prefix}.adaptive_makespan_s": self.adaptive_makespan,
            f"{prefix}.speedup": self.speedup,
            f"{prefix}.decisions": float(len(self.controller.decisions)),
            f"{prefix}.pool_final": float(
                self.controller.pool_trajectory[-1][1]
                if self.controller.pool_trajectory else 0),
        }

    def summary(self) -> dict[str, Any]:
        """JSON-serializable artifact: makespans, decisions, trajectory."""
        return {
            "config": self.config,
            "static_makespan_s": self.static_makespan,
            "adaptive_makespan_s": self.adaptive_makespan,
            "speedup": self.speedup,
            "improved": self.improved,
            "static_max_queue_wait_s": self.static_max_queue_wait,
            "adaptive_max_queue_wait_s": self.adaptive_max_queue_wait,
            "pool_trajectory": [[t, n] for t, n
                                in self.controller.pool_trajectory],
            "decisions": self.controller.decision_log(),
        }


def run_control_scenario(n_steps: int = 12,
                         n_buckets: int = 4,
                         analysis_interval: int = 1,
                         seed: int = 0,
                         crash_times: tuple[float, ...] = (30.0, 55.0),
                         pull_stall_rate: float = 0.05,
                         pull_stall_seconds: float = 2.0,
                         lease_timeout: float = 5.0,
                         policy: ControlPolicy | None = None,
                         controller: PlacementController | None = None,
                         ) -> ControlReport:
    """Run the fault-injected adaptive-vs-static comparison.

    Both replays use the paper's 4896-core configuration and an identical
    :class:`~repro.faults.FaultConfig` (same seed, same crash plan, same
    stall odds). The static run keeps whatever pool survives the crashes;
    the adaptive run hands the same replay a controller.
    """
    # Lazy import: repro.core.tradeoff imports this package's hysteresis
    # sibling via steering; keep the module graph acyclic.
    from repro.core.runner import ExperimentConfig, ScaledExperiment

    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    fault = FaultConfig(seed=seed, crash_times=crash_times,
                        pull_stall_rate=pull_stall_rate,
                        pull_stall_seconds=pull_stall_seconds)
    static = exp.run_schedule(n_steps=n_steps, n_buckets=n_buckets,
                              analysis_interval=analysis_interval,
                              lease_timeout=lease_timeout,
                              fault_config=fault)
    ctrl = controller or PlacementController(policy)
    adaptive = exp.run_schedule(n_steps=n_steps, n_buckets=n_buckets,
                                analysis_interval=analysis_interval,
                                lease_timeout=lease_timeout,
                                controller=ctrl,
                                fault_config=fault)
    return ControlReport(
        static_makespan=static.makespan,
        adaptive_makespan=adaptive.makespan,
        static_max_queue_wait=static.max_queue_wait(),
        adaptive_max_queue_wait=adaptive.max_queue_wait(),
        controller=ctrl,
        static_result=static,
        adaptive_result=adaptive,
        config={
            "experiment": exp.config.name,
            "n_steps": n_steps,
            "n_buckets": n_buckets,
            "analysis_interval": analysis_interval,
            "seed": seed,
            "crash_times": list(crash_times),
            "pull_stall_rate": pull_stall_rate,
            "pull_stall_seconds": pull_stall_seconds,
            "lease_timeout": lease_timeout,
        })
