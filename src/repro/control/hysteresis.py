"""Hysteresis primitives shared by steering rules and the controller.

Both feedback paths — the per-result steering rules of
:mod:`repro.core.steering` and the windowed placement controller of
:mod:`repro.control.controller` — need the same debounce: once an
actuator fires, suppress re-firing until the system has moved far enough
along some monotone axis (timesteps for steering, decision windows for
the controller). Keeping the primitive here, in a leaf module with no
other repro imports, lets both layers share one knob without an import
cycle.
"""

from __future__ import annotations


class Cooldown:
    """Refractory period along a monotone position axis.

    After :meth:`fire` at position ``x``, :meth:`ready` stays False until
    the position has advanced by at least ``period``. A period of 0 is
    always ready — the caller gets pure no-op/flap suppression from its
    own effective-change check, with no extra damping.
    """

    __slots__ = ("period", "last_fired")

    def __init__(self, period: float = 0.0) -> None:
        if period < 0:
            raise ValueError(f"cooldown period must be >= 0, got {period}")
        self.period = period
        self.last_fired: float | None = None

    def ready(self, position: float) -> bool:
        return (self.last_fired is None
                or position - self.last_fired >= self.period)

    def fire(self, position: float) -> None:
        self.last_fired = position

    def reset(self) -> None:
        self.last_fired = None
