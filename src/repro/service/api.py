"""`CampaignService`: the multi-tenant campaign service front-end.

Composition (one batch, end to end)::

    submit --> JobQueue --(fair-share + QuotaManager admission)--> WorkerPool
                   |                                                  |
                   'asks per candidate                                v
                                                    JobExecutor: ScheduleCache
                                                      hit  -> cached result
                                                      miss -> ScaledExperiment
                                                              .run_schedule
                                                              (ShardedDataSpaces
                                                               when n_shards>1)

The service clock is a dedicated DES engine: queue waits, quota holds
and worker occupancy play out in simulated service time, so every batch
is deterministic and the whole layer is testable at machine speed
(SIM-SITU's argument, applied to our own service).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.runner import ScaledExperiment, ScheduleResult
from repro.des import Engine
from repro.machine.specs import MachineSpec
from repro.obs.capacity import capacity_objectives
from repro.obs.live import (
    KIND_CAPACITY,
    Alert,
    BurnRateMonitor,
    SloObjective,
    TelemetryBus,
    default_objectives,
)
from repro.obs.perf import RunRecord, RunStore, machine_fingerprint
from repro.obs.tracer import get_tracer
from repro.service.cache import ScheduleCache, schedule_cache_key
from repro.service.queue import Job, JobQueue, JobSpec, JobState
from repro.service.quota import Denial, JobDemand, QuotaManager, TenantQuota
from repro.service.shards import ShardBalanceReport
from repro.service.workers import WorkerPool

JOBS_SOURCE = "service-job"


class JobExecutor:
    """Runs one job: schedule-cache lookup, else a full DES replay."""

    def __init__(self, cache: ScheduleCache,
                 machine: MachineSpec | None = None,
                 probe_interval: float | None = None) -> None:
        self.cache = cache
        self.machine = machine
        #: Probe sampling period for executed replays. Deliberately NOT
        #: part of the cache key: sampling never changes the schedule.
        self.probe_interval = probe_interval

    def _experiment(self, spec: JobSpec) -> ScaledExperiment:
        return ScaledExperiment(spec.experiment_config(),
                                machine=self.machine)

    def cache_key(self, spec: JobSpec) -> str:
        exp = self._experiment(spec)
        return schedule_cache_key(machine_fingerprint(exp.machine),
                                  spec.workload_dict(),
                                  spec.placement_dict())

    def demand(self, spec: JobSpec) -> JobDemand:
        """Resources the job pins: its core allocation plus the peak
        staging bytes of the replay (closed-form, no DES needed)."""
        exp = self._experiment(spec)
        return JobDemand(
            staging_bytes=exp.staging_memory_needed(
                spec.analysis_interval, spec.n_buckets),
            cores=spec.experiment_config().n_cores)

    def execute(self, spec: JobSpec) -> tuple[ScheduleResult, bool]:
        """``(result, cache_hit)`` for one job."""
        key = self.cache_key(spec)
        cached = self.cache.lookup(key)
        if cached is not None:
            return cached, True
        sched = self._experiment(spec).run_schedule(
            n_steps=spec.n_steps,
            analyses=spec.variants(),
            n_buckets=spec.n_buckets,
            analysis_interval=spec.analysis_interval,
            probe_interval=self.probe_interval,
            n_shards=spec.n_shards,
            lease_timeout=spec.lease_timeout,
            bucket_restart_delay=spec.bucket_restart_delay,
            max_bucket_restarts=spec.max_bucket_restarts,
            fault_config=spec.fault_config())
        self.cache.insert(key, sched, meta={"config": spec.config})
        return sched, False


def _percentiles(values: list[float],
                 points: tuple[int, ...] = (50, 95, 99)) -> dict[str, float]:
    """Nearest-rank percentiles (the :class:`Histogram` convention),
    defined for any n >= 1 — a one-job tenant reports p50=p95=p99."""
    if not values:
        return {}
    ordered = sorted(values)
    out: dict[str, float] = {}
    for p in points:
        rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
        out[f"p{p}"] = ordered[rank]
    return out


@dataclass
class TenantReport:
    """One tenant's slice of a service batch."""

    tenant: str
    submitted: int = 0
    done: int = 0
    failed: int = 0
    queued: int = 0
    cache_hits: int = 0
    #: Times this tenant's jobs were passed over by admission control.
    held_events: int = 0
    total_queue_wait: float = 0.0
    max_queue_wait: float = 0.0
    makespan_total: float = 0.0
    bytes_pulled: int = 0
    #: Per-job dispatch waits (feeds the percentile summary).
    queue_waits: list[float] = field(default_factory=list)
    #: Burn-rate alerts attributed to this tenant during the batch.
    alerts: int = 0
    #: Quota true-up (ledger-capable jobs only): summed admission
    #: estimates vs ledger-measured peaks. Negative delta = the analytic
    #: model over-charged the tenant.
    staging_estimated_bytes: int = 0
    staging_measured_bytes: int = 0
    staging_delta_bytes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant, "submitted": self.submitted,
            "done": self.done, "failed": self.failed, "queued": self.queued,
            "cache_hits": self.cache_hits, "held_events": self.held_events,
            "total_queue_wait": self.total_queue_wait,
            "max_queue_wait": self.max_queue_wait,
            "makespan_total": self.makespan_total,
            "bytes_pulled": self.bytes_pulled,
            # Defined for every tenant that completed >= 1 job (a
            # single-job tenant reports p50=p95=p99), not only n > 1.
            "service.queue_wait_s": _percentiles(self.queue_waits),
            "alerts": self.alerts,
            "staging_estimated_bytes": self.staging_estimated_bytes,
            "staging_measured_bytes": self.staging_measured_bytes,
            "staging_delta_bytes": self.staging_delta_bytes,
        }


@dataclass
class ServiceReport:
    """Whole-batch outcome: per-tenant figures + service-level stats."""

    tenants: dict[str, TenantReport]
    jobs: list[Job]
    duration: float
    cache_hits: int
    cache_misses: int
    held_events: int
    shard_balance: ShardBalanceReport | None = None
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: Burn-rate alerts raised while the batch drained (fire order).
    alerts: list[Alert] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def all_done(self) -> bool:
        return all(j.state is JobState.DONE for j in self.jobs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "duration": self.duration,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "held_events": self.held_events,
            "all_done": self.all_done,
            "tenants": {t: r.to_dict() for t, r in sorted(self.tenants.items())},
            "jobs": [j.to_dict() for j in self.jobs],
            "shard_balance": (self.shard_balance.to_dict()
                              if self.shard_balance is not None else None),
            "quotas": {t: q.to_dict() for t, q in sorted(self.quotas.items())},
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def table(self) -> str:
        """Per-tenant summary table (the ``repro serve`` batch report)."""
        header = (f"{'tenant':<12} {'jobs':>4} {'done':>4} {'fail':>4} "
                  f"{'queued':>6} {'hits':>4} {'held':>4} "
                  f"{'max wait (s)':>12} {'makespan (s)':>12}")
        lines = [header, "-" * len(header)]
        for tenant in sorted(self.tenants):
            r = self.tenants[tenant]
            lines.append(
                f"{tenant:<12} {r.submitted:>4} {r.done:>4} {r.failed:>4} "
                f"{r.queued:>6} {r.cache_hits:>4} {r.held_events:>4} "
                f"{r.max_queue_wait:>12.3f} {r.makespan_total:>12.3f}")
        lines.append(
            f"batch: {len(self.jobs)} jobs in {self.duration:.3f}s service "
            f"time, cache hit rate {self.cache_hit_rate:.0%}, "
            f"{self.held_events} quota hold(s)")
        return "\n".join(lines)


class CampaignService:
    """Multi-tenant schedule-as-a-service over a dedicated DES engine."""

    def __init__(self, workers: int = 2,
                 quotas: list[TenantQuota] | None = None,
                 default_quota: TenantQuota | None = None,
                 cache: ScheduleCache | RunStore | str | Path | None = None,
                 jobs_store: RunStore | str | Path | None = None,
                 machine: MachineSpec | None = None,
                 bus: TelemetryBus | None = None,
                 objectives: tuple[SloObjective, ...] | None = None,
                 probe_interval: float | None = None) -> None:
        self.engine = Engine()
        self.queue = JobQueue()
        self.quota = QuotaManager(quotas, default=default_quota)
        self.cache = (cache if isinstance(cache, ScheduleCache)
                      else ScheduleCache(cache))
        self.executor = JobExecutor(self.cache, machine=machine,
                                    probe_interval=probe_interval)
        #: Live telemetry plane: the bus carries job/span/probe/alert
        #: events; the monitor turns queue-wait and makespan-slowdown
        #: observations into per-tenant burn-rate alerts. Both exist
        #: even without a bus so `repro top` always has live state.
        self.bus = bus
        if objectives is None:
            # Queue-wait/slowdown QoS plus the capacity plane's
            # estimated-vs-measured staging and NIC objectives.
            objectives = default_objectives() + capacity_objectives()
        self.monitor = BurnRateMonitor(objectives, bus=bus,
                                       tracer=get_tracer())
        if jobs_store is not None and not isinstance(jobs_store, RunStore):
            jobs_store = RunStore(jobs_store)
        self.jobs_store = jobs_store
        self.jobs: list[Job] = []
        self._job_ids = itertools.count(1)
        self.pool = WorkerPool(self.engine, workers,
                               next_job=self._next_job,
                               run_job=self._run_job,
                               on_done=self._job_done)
        #: Batch-level cache accounting (the shared ScheduleCache may be
        #: warmed by earlier services; these count only this batch).
        self.cache_hits = 0
        self.cache_misses = 0
        # Attach the bus last: worker process.start instants fire during
        # pool construction and are service plumbing, not tenant events —
        # everything published from here on is job-attributable.
        tracer = get_tracer()
        if bus is not None and tracer.enabled:
            tracer.attach_bus(bus)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Register one job; it enters the queue at ``spec.submit_at``."""
        job = Job(spec=spec,
                  job_id=f"{spec.tenant}/{spec.name}#{next(self._job_ids)}")
        self.jobs.append(job)
        at = max(spec.submit_at, self.engine.now)
        self.engine.call_at(at, lambda: self._enqueue(job))
        return job

    def _enqueue(self, job: Job) -> None:
        job.submit_t = self.engine.now
        self.queue.push(job)
        self._publish("job.queued", job,
                      queue_depth=self.queue.pending_for(job.tenant))
        self._pump()

    # -- live telemetry ------------------------------------------------------

    def _publish(self, name: str, job: Job, **data: Any) -> None:
        """One job-lifecycle event on the bus (service clock, tenant-tagged)."""
        if self.bus is not None:
            self.bus.publish("job", name, t=self.engine.now, lane="service",
                             tenant=job.tenant, job_id=job.job_id, **data)

    # -- scheduling ----------------------------------------------------------

    def _admit(self, job: Job) -> Denial | None:
        if job.demand is None:
            job.demand = self.executor.demand(job.spec)
        denial = self.quota.check(job.tenant, job.demand)
        if denial is not None:
            name = ("job.failed" if getattr(denial, "permanent", False)
                    else "job.held")
            self._publish(name, job, reason=denial.reason)
        return denial

    def _next_job(self) -> Job | None:
        job = self.queue.pop_runnable(self._admit)
        if job is not None:
            self.quota.acquire(job.tenant, job.demand)
        return job

    def _pump(self) -> None:
        while self.pool.has_idle():
            job = self._next_job()
            if job is None:
                break
            self.pool.dispatch(job)

    def _run_job(self, job: Job, worker: str) -> float:
        job.state = JobState.RUNNING
        job.worker = worker
        job.start_t = self.engine.now
        tracer = get_tracer()
        metrics = tracer.metrics
        metrics.histogram("service.queue_wait_s").observe(job.queue_wait)
        self._publish("job.start", job, worker=worker,
                      queue_wait=job.queue_wait)
        self.monitor.observe(job.tenant, "queue_wait_s", t=self.engine.now,
                             value=job.queue_wait or 0.0, job_id=job.job_id)
        try:
            # Ambient tenant/job context: every span, instant and probe
            # sample the inner replay engine records carries these tags,
            # so bus events stay attributable across the DES boundary.
            with tracer.context(tenant=job.tenant, job=job.job_id):
                sched, hit = self.executor.execute(job.spec)
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job.state = JobState.FAILED
            job.error = repr(exc)
            metrics.counter("service.jobs_failed").inc()
            return 0.0
        finally:
            # The inner replay engine stole the tracer clock ("last
            # engine wins"); later service events must read service time.
            tracer.attach_engine(self.engine)
        job.result = sched
        job.cache_hit = hit
        if hit:
            self.cache_hits += 1
            metrics.counter("service.cache_hits").inc()
        else:
            self.cache_misses += 1
            metrics.counter("service.cache_misses").inc()
        # A hit serves from memory (free on the service clock); a miss
        # occupies the worker's allocation for the replay's makespan.
        return 0.0 if hit else sched.makespan

    def _true_up(self, job: Job, cap: Any) -> None:
        """Reconcile the admission estimate against the job's capacity
        ledger and feed the per-tenant capacity objectives.

        Runs for every ledger-capable completion, cache hits included —
        a cached :class:`ScheduleResult` carries the capacity report
        measured when the schedule was first executed, and the tenant
        pinned its full admission estimate either way.
        """
        estimated = job.demand.staging_bytes
        measured = cap.peak_resident_bytes
        self.quota.true_up(job.tenant, job.job_id, estimated, measured)
        if estimated > 0:
            self.monitor.observe(job.tenant, "staging_peak_frac",
                                 t=self.engine.now,
                                 value=measured / estimated,
                                 job_id=job.job_id)
            self.monitor.observe(job.tenant, "nic_peak_frac",
                                 t=self.engine.now,
                                 value=cap.nic_peak_bytes / estimated,
                                 job_id=job.job_id)
        if self.bus is not None:
            self.bus.publish(KIND_CAPACITY, "capacity.job",
                             t=self.engine.now, lane="service",
                             tenant=job.tenant, job_id=job.job_id,
                             estimated=estimated, measured=measured,
                             delta=measured - estimated,
                             nic_peak=cap.nic_peak_bytes,
                             leaks=len(cap.leaks))

    def _job_done(self, job: Job) -> None:
        job.finish_t = self.engine.now
        if job.state is JobState.RUNNING:
            job.state = JobState.DONE
        self.quota.release(job.tenant, job.demand)
        if job.state is JobState.DONE and job.result is not None:
            sched = job.result
            slowdown = (sched.makespan / (sched.n_steps * sched.sim_step_time)
                        if sched.n_steps and sched.sim_step_time else 0.0)
            self._publish("job.done", job, makespan=sched.makespan,
                          slowdown=slowdown, cache_hit=job.cache_hit)
            self.monitor.observe(job.tenant, "makespan_slowdown",
                                 t=self.engine.now, value=slowdown,
                                 job_id=job.job_id)
            if sched.capacity is not None and job.demand is not None:
                self._true_up(job, sched.capacity)
        elif job.state is JobState.FAILED:
            self._publish("job.failed", job, error=job.error)
        metrics = get_tracer().metrics
        served = self.cache_hits + self.cache_misses
        if served:
            metrics.gauge("service.cache_hit_rate").set(
                self.cache_hits / served)
        if job.result is not None and job.result.shard_balance is not None:
            for load in job.result.shard_balance.loads:
                metrics.gauge(f"service.shard.{load.shard}.tasks").set(
                    float(load.tasks))
                metrics.gauge(f"service.shard.{load.shard}.bytes").set(
                    float(load.bytes))
        if self.jobs_store is not None:
            self.jobs_store.append(RunRecord.new(
                source=JOBS_SOURCE,
                metrics={
                    "service.queue_wait_s": job.queue_wait or 0.0,
                    "service.makespan_s": (job.result.makespan
                                           if job.result else 0.0),
                },
                meta=job.to_dict()))
        self._pump()

    # -- draining ------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain the service: run until no runnable work remains."""
        self.engine.run()
        return self.report()

    def run_batch(self, specs: list[JobSpec]) -> ServiceReport:
        for spec in specs:
            self.submit(spec)
        return self.run()

    # -- reporting -----------------------------------------------------------

    def report(self) -> ServiceReport:
        tenants: dict[str, TenantReport] = {}
        balances: list[ShardBalanceReport] = []
        for job in self.jobs:
            rep = tenants.setdefault(job.tenant,
                                     TenantReport(tenant=job.tenant))
            rep.submitted += 1
            rep.held_events += job.held
            if job.state is JobState.DONE:
                rep.done += 1
                rep.cache_hits += int(job.cache_hit)
                wait = job.queue_wait or 0.0
                rep.total_queue_wait += wait
                rep.max_queue_wait = max(rep.max_queue_wait, wait)
                rep.queue_waits.append(wait)
                if job.result is not None:
                    rep.makespan_total += job.result.makespan
                    rep.bytes_pulled += sum(r.bytes_pulled
                                            for r in job.result.results)
                    if job.result.shard_balance is not None:
                        balances.append(job.result.shard_balance)
            elif job.state is JobState.FAILED:
                rep.failed += 1
            else:
                rep.queued += 1
        for alert in self.monitor.alerts:
            if alert.tenant in tenants:
                tenants[alert.tenant].alerts += 1
        for tenant, rep in tenants.items():
            summary = self.quota.true_up_summary(tenant)
            rep.staging_estimated_bytes = summary["estimated_bytes"]
            rep.staging_measured_bytes = summary["measured_bytes"]
            rep.staging_delta_bytes = summary["delta_bytes"]
        return ServiceReport(
            tenants=tenants,
            jobs=list(self.jobs),
            duration=self.engine.now,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            held_events=sum(job.held for job in self.jobs),
            shard_balance=(ShardBalanceReport.merge(balances)
                           if balances else None),
            quotas={**self.quota.quotas, "*": self.quota.default},
            alerts=list(self.monitor.alerts),
        )
