"""`repro.service` — schedule-as-a-service in front of the campaign runner.

The paper's hybrid in-situ/in-transit design serves exactly one campaign
in one process. This package turns the reproduction into a multi-tenant
campaign service:

* :mod:`repro.service.queue` — job specs and the per-tenant fair-share
  job queue;
* :mod:`repro.service.quota` — per-tenant resource quotas (concurrent
  jobs, staging-bytes budget, core allocation) with admission control;
* :mod:`repro.service.workers` — the DES worker pool draining the queue;
* :mod:`repro.service.shards` — sharded DataSpaces: N independent
  tuple-space shards with :class:`~repro.staging.hashing.ServiceRing`
  DHT routing of region keys;
* :mod:`repro.service.cache` — the memoized schedule/cost-model cache
  keyed by (machine fingerprint, workload spec, placement), persisted
  through the RunStore contract;
* :mod:`repro.service.api` — :class:`~repro.service.api.CampaignService`
  tying the layers together, plus per-tenant reporting.
"""

from repro.service.api import CampaignService, ServiceReport, TenantReport
from repro.service.cache import ScheduleCache, schedule_cache_key
from repro.service.queue import Job, JobQueue, JobSpec, JobState
from repro.service.quota import QuotaManager, TenantQuota
from repro.service.shards import ShardBalanceReport, ShardedDataSpaces
from repro.service.workers import WorkerPool

__all__ = [
    "CampaignService",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "QuotaManager",
    "ScheduleCache",
    "ServiceReport",
    "ShardBalanceReport",
    "ShardedDataSpaces",
    "TenantQuota",
    "TenantReport",
    "WorkerPool",
    "schedule_cache_key",
]
