"""Job specs and the per-tenant fair-share job queue.

A job is one campaign/schedule-replay request: which paper allocation to
replay, how many steps/buckets/shards, and which analyses to run. Specs
are plain data (JSONL-serializable) so batches can be built with
``repro submit`` and drained with ``repro serve``.

The queue keeps one FIFO per tenant and serves tenants round-robin, so a
tenant flooding the service only queues behind itself — other tenants'
head-of-line jobs still get the next free worker. Admission is delegated
to the caller (the quota layer): the queue asks ``admit(job)`` per
candidate and skips (holding) or fails (permanent denial) accordingly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable

from repro.core.runner import ExperimentConfig, ScheduleResult
from repro.core.workload import AnalyticsVariant

#: Known machine allocations a job may request (Table I columns).
CONFIGS: dict[str, Callable[[], ExperimentConfig]] = {
    "paper_4896": ExperimentConfig.paper_4896,
    "paper_9440": ExperimentConfig.paper_9440,
}

_DEFAULT_ANALYSES = ("VIS_HYBRID", "TOPO_HYBRID", "STATS_HYBRID")


class JobState(Enum):
    PENDING = "pending"     # submitted, not yet eligible (submit_at in future)
    QUEUED = "queued"       # in the queue, waiting for admission + a worker
    RUNNING = "running"     # held by a worker
    DONE = "done"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class JobSpec:
    """One campaign/schedule-replay request (immutable, JSON-serializable)."""

    tenant: str
    name: str
    config: str = "paper_4896"
    n_steps: int = 10
    n_buckets: int = 8
    analysis_interval: int = 1
    analyses: tuple[str, ...] = _DEFAULT_ANALYSES
    n_shards: int = 1
    #: Service-clock time at which the job enters the queue.
    submit_at: float = 0.0
    # Fault knobs forwarded to the replay (per shard).
    lease_timeout: float | None = None
    bucket_restart_delay: float | None = None
    max_bucket_restarts: int = 0
    # Fault *injection* plan for the replay (deterministic, seeded) —
    # lets a service batch carry chaos tenants next to clean ones.
    fault_seed: int = 0
    crash_times: tuple[float, ...] = ()
    pull_failure_rate: float = 0.0
    pull_stall_rate: float = 0.0
    pull_stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.config not in CONFIGS:
            raise ValueError(
                f"unknown config {self.config!r}; choose from "
                f"{sorted(CONFIGS)}")
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {self.n_buckets}")
        if self.analysis_interval < 1:
            raise ValueError("analysis_interval must be >= 1")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_buckets < self.n_shards:
            raise ValueError(
                f"need at least one bucket per shard: {self.n_buckets} "
                f"buckets < {self.n_shards} shards")
        if self.submit_at < 0:
            raise ValueError("submit_at must be >= 0")
        if not self.analyses:
            raise ValueError("need at least one analysis")
        valid = {v.name for v in AnalyticsVariant}
        for a in self.analyses:
            if a not in valid:
                raise ValueError(
                    f"unknown analysis {a!r}; choose from {sorted(valid)}")
        for rate in ("pull_failure_rate", "pull_stall_rate"):
            value = getattr(self, rate)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{rate} must be in [0, 1], got {value}")
        if self.pull_stall_seconds < 0:
            raise ValueError("pull_stall_seconds must be >= 0")
        if self.has_faults() and self.n_shards != 1:
            raise ValueError("fault injection requires n_shards == 1")
        if self.crash_times and self.lease_timeout is None:
            raise ValueError(
                "crash_times require lease_timeout (crash recovery runs "
                "through the lease/reassignment path)")
        # Normalize list -> tuple for hashing/equality after JSON loads.
        object.__setattr__(self, "analyses", tuple(self.analyses))
        object.__setattr__(self, "crash_times", tuple(self.crash_times))

    # -- derived -------------------------------------------------------------

    def variants(self) -> tuple[AnalyticsVariant, ...]:
        return tuple(AnalyticsVariant[a] for a in self.analyses)

    def experiment_config(self) -> ExperimentConfig:
        return CONFIGS[self.config]()

    def has_faults(self) -> bool:
        return bool(self.crash_times or self.pull_failure_rate
                    or self.pull_stall_rate)

    def fault_config(self) -> "FaultConfig | None":
        """The replay's injection plan, or None when the spec is clean."""
        if not self.has_faults():
            return None
        from repro.faults.injector import FaultConfig
        return FaultConfig(seed=self.fault_seed,
                           crash_times=self.crash_times,
                           pull_failure_rate=self.pull_failure_rate,
                           pull_stall_rate=self.pull_stall_rate,
                           pull_stall_seconds=self.pull_stall_seconds)

    def workload_dict(self) -> dict[str, Any]:
        """The workload half of the schedule-cache key: what is replayed."""
        return {
            "config": self.config,
            "n_steps": self.n_steps,
            "analysis_interval": self.analysis_interval,
            "analyses": list(self.analyses),
        }

    def placement_dict(self) -> dict[str, Any]:
        """The placement half of the schedule-cache key: where it runs."""
        return {
            "n_buckets": self.n_buckets,
            "n_shards": self.n_shards,
            "lease_timeout": self.lease_timeout,
            "bucket_restart_delay": self.bucket_restart_delay,
            "max_bucket_restarts": self.max_bucket_restarts,
            "fault_seed": self.fault_seed,
            "crash_times": list(self.crash_times),
            "pull_failure_rate": self.pull_failure_rate,
            "pull_stall_rate": self.pull_stall_rate,
            "pull_stall_seconds": self.pull_stall_seconds,
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "name": self.name,
            "config": self.config,
            "n_steps": self.n_steps,
            "n_buckets": self.n_buckets,
            "analysis_interval": self.analysis_interval,
            "analyses": list(self.analyses),
            "n_shards": self.n_shards,
            "submit_at": self.submit_at,
            "lease_timeout": self.lease_timeout,
            "bucket_restart_delay": self.bucket_restart_delay,
            "max_bucket_restarts": self.max_bucket_restarts,
            "fault_seed": self.fault_seed,
            "crash_times": list(self.crash_times),
            "pull_failure_rate": self.pull_failure_rate,
            "pull_stall_rate": self.pull_stall_rate,
            "pull_stall_seconds": self.pull_stall_seconds,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "JobSpec":
        unknown = set(d) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        data = dict(d)
        if "analyses" in data:
            data["analyses"] = tuple(data["analyses"])
        if "crash_times" in data:
            data["crash_times"] = tuple(data["crash_times"])
        return cls(**data)

    def with_submit_at(self, t: float) -> "JobSpec":
        return replace(self, submit_at=t)


@dataclass
class Job:
    """One submitted job and its lifecycle bookkeeping (service clock)."""

    spec: JobSpec
    job_id: str
    state: JobState = JobState.PENDING
    submit_t: float | None = None
    start_t: float | None = None
    finish_t: float | None = None
    worker: str | None = None
    cache_hit: bool = False
    error: str | None = None
    result: ScheduleResult | None = None
    #: Times this job was passed over by admission control while queued.
    held: int = 0
    held_reasons: list[str] = field(default_factory=list)
    #: Resource demand, attached at first admission check.
    demand: Any | None = None

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def queue_wait(self) -> float | None:
        """Service-clock seconds between enqueue and dispatch."""
        if self.submit_t is None or self.start_t is None:
            return None
        return self.start_t - self.submit_t

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state.value,
            "submit_t": self.submit_t,
            "start_t": self.start_t,
            "finish_t": self.finish_t,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "held": self.held,
            "held_reasons": list(self.held_reasons),
            "queue_wait": self.queue_wait,
            "makespan": self.result.makespan if self.result else None,
            "spec": self.spec.to_dict(),
        }


class JobQueue:
    """Per-tenant FIFOs served round-robin with admission control."""

    def __init__(self) -> None:
        self._queues: dict[str, deque[Job]] = {}
        self._rr: list[str] = []   # tenant service order (rotates)
        self.pushed = 0
        self.popped = 0

    def push(self, job: Job) -> None:
        tenant = job.tenant
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._rr.append(tenant)
        job.state = JobState.QUEUED
        self._queues[tenant].append(job)
        self.pushed += 1

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending(self) -> list[Job]:
        """Queued jobs in tenant round-robin order (for reports)."""
        return [job for tenant in self._rr
                for job in self._queues.get(tenant, ())]

    def pending_for(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def pop_runnable(self, admit: Callable[[Job], Any]) -> Job | None:
        """Pop the next admissible job, serving tenants round-robin.

        ``admit(job)`` returns None to admit, or a
        :class:`~repro.service.quota.Denial`. A transient denial leaves
        the job at its tenant's head (counted on :attr:`Job.held`) and
        moves on to the next tenant; a permanent denial pops the job and
        marks it FAILED. After a successful pop the serving order rotates
        so no tenant monopolizes the workers.
        """
        for offset in range(len(self._rr)):
            tenant = self._rr[offset]
            queue = self._queues.get(tenant)
            while queue:
                job = queue[0]
                denial = admit(job)
                if denial is None:
                    queue.popleft()
                    self.popped += 1
                    # Rotate: tenants after the served one go first next time.
                    self._rr = (self._rr[offset + 1:]
                                + self._rr[:offset + 1])
                    return job
                if getattr(denial, "permanent", False):
                    # Unsatisfiable job: fail it and let the tenant's
                    # next job move up (no point holding the line for a
                    # job that can never be admitted).
                    queue.popleft()
                    job.state = JobState.FAILED
                    job.error = denial.reason
                    continue
                job.held += 1
                job.held_reasons.append(denial.reason)
                break  # tenant blocked; try the next tenant
        return None
