"""The memoized schedule/cost-model cache.

Schedule replays are deterministic functions of *(modeled machine,
workload spec, placement)* — the DES has no other inputs. The service
therefore memoizes them: the first job with a given key pays the replay,
every later identical what-if query is a cache hit returning the exact
same :class:`~repro.core.runner.ScheduleResult` figures (JSON
round-trips Python floats by ``repr``, so cached results are
bit-identical to fresh ones).

Entries persist through the :class:`~repro.obs.perf.RunStore` contract —
each insert appends one ``schedule-cache`` record whose ``meta`` carries
the key and the full schedule summary — so a restarted service warms up
from disk and cache history is inspectable with the same tooling as any
other run store.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.core.runner import ScheduleResult
from repro.obs.capacity import CapacityReport
from repro.obs.perf import RunRecord, RunStore
from repro.service.shards import ShardBalanceReport
from repro.staging.descriptors import TaskResult

CACHE_SOURCE = "schedule-cache"


def schedule_cache_key(machine: dict[str, Any], workload: dict[str, Any],
                       placement: dict[str, Any]) -> str:
    """Stable key over (machine fingerprint, workload spec, placement)."""
    payload = json.dumps(
        {"machine": machine, "workload": workload, "placement": placement},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def schedule_to_dict(sched: ScheduleResult) -> dict[str, Any]:
    """Serialize the replay figures a cache hit must reproduce exactly.

    Task ``value`` payloads are always None on the replay path and
    scheduler assignment records are droppable provenance, so the
    round-trip covers everything :class:`ScheduleResult` exposes to
    service clients.
    """
    return {
        "makespan": sched.makespan,
        "n_steps": sched.n_steps,
        "sim_step_time": sched.sim_step_time,
        "n_buckets": sched.n_buckets,
        "results": [
            [r.task_id, r.analysis, r.timestep, r.bucket,
             r.enqueue_time, r.assign_time, r.pull_done_time,
             r.finish_time, r.bytes_pulled]
            for r in sched.results
        ],
        "shard_balance": (sched.shard_balance.to_dict()
                          if sched.shard_balance is not None else None),
        # Full series (series_cap=None): a hit's capacity report must be
        # bit-identical to the fresh one, like every other cached figure.
        "capacity": (sched.capacity.to_dict(series_cap=None)
                     if sched.capacity is not None else None),
    }


def schedule_from_dict(d: dict[str, Any]) -> ScheduleResult:
    """Rebuild a :class:`ScheduleResult` from its cached summary."""
    results = [
        TaskResult(task_id=row[0], analysis=row[1], timestep=row[2],
                   bucket=row[3], value=None, enqueue_time=row[4],
                   assign_time=row[5], pull_done_time=row[6],
                   finish_time=row[7], bytes_pulled=row[8])
        for row in d["results"]
    ]
    balance = d.get("shard_balance")
    capacity = d.get("capacity")
    return ScheduleResult(
        results=results,
        makespan=d["makespan"],
        n_steps=d["n_steps"],
        sim_step_time=d["sim_step_time"],
        n_buckets=d["n_buckets"],
        shard_balance=(ShardBalanceReport.from_dict(balance)
                       if balance is not None else None),
        capacity=(CapacityReport.from_dict(capacity)
                  if capacity is not None else None),
    )


class ScheduleCache:
    """Key -> schedule-summary map with optional RunStore persistence."""

    def __init__(self, store: RunStore | str | Path | None = None) -> None:
        if store is not None and not isinstance(store, RunStore):
            store = RunStore(store)
        self.store = store
        self._mem: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if self.store is not None:
            for rec in self.store.records():
                if rec.source != CACHE_SOURCE:
                    continue
                key = rec.meta.get("cache_key")
                summary = rec.meta.get("schedule")
                if key and isinstance(summary, dict):
                    self._mem[key] = summary

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, key: str) -> ScheduleResult | None:
        """The cached result for ``key`` (counting the hit/miss)."""
        summary = self._mem.get(key)
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return schedule_from_dict(summary)

    def insert(self, key: str, sched: ScheduleResult,
               meta: dict[str, Any] | None = None) -> None:
        summary = schedule_to_dict(sched)
        self._mem[key] = summary
        if self.store is not None:
            self.store.append(RunRecord.new(
                source=CACHE_SOURCE,
                metrics={"schedule.makespan_s": sched.makespan,
                         "schedule.n_tasks": float(len(sched.results))},
                meta={"cache_key": key, "schedule": summary,
                      **(meta or {})}))
