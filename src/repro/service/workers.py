"""The DES worker pool draining the job queue.

Workers are processes on the *service* engine — a second, outer DES
clock, distinct from the per-job replay engines. Each job replay runs to
completion on its own inner engine (exactly as a standalone
:meth:`~repro.core.runner.ScaledExperiment.run_schedule` call, which is
what makes service results bit-identical to serial runs); the worker
then holds its service-clock slot for the replay's makespan, modelling
the wall occupancy of the in-transit allocation. Queue waits and quota
holds therefore play out in simulated service time, deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.des import Engine, EventHandle


class WorkerPool:
    """Fixed pool of DES workers pulling jobs from a dispatch callback.

    The pool is wired with three callbacks:

    * ``next_job()`` — pop the next admissible job, or None;
    * ``run_job(job, worker)`` — execute it (Python-side, instantaneous
      on the service clock) and return the service-clock hold time;
    * ``on_done(job)`` — completion bookkeeping (release quota, pump).

    Idle workers park on an engine event; :meth:`dispatch` hands a job
    straight to a parked worker. The engine drains naturally once no
    work remains — held-forever jobs simply stay queued and surface in
    the service report.
    """

    def __init__(self, engine: Engine, n_workers: int,
                 next_job: Callable[[], Any],
                 run_job: Callable[[Any, str], float],
                 on_done: Callable[[Any], None]) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.engine = engine
        self.n_workers = n_workers
        self._next_job = next_job
        self._run_job = run_job
        self._on_done = on_done
        self._idle: deque[tuple[str, EventHandle]] = deque()
        #: worker name -> job_id currently held (introspection).
        self.busy: dict[str, str] = {}
        self.jobs_run = 0
        for i in range(n_workers):
            name = f"worker-{i}"
            engine.process(self._worker(name), name=f"service:{name}")

    def idle_count(self) -> int:
        return len(self._idle)

    def has_idle(self) -> bool:
        return bool(self._idle)

    def dispatch(self, job: Any) -> bool:
        """Hand ``job`` to a parked worker; False if none is idle."""
        if not self._idle:
            return False
        _name, ev = self._idle.popleft()
        ev.succeed(job)
        return True

    def _worker(self, name: str):
        while True:
            job = self._next_job()
            if job is None:
                ev = self.engine.event()
                self._idle.append((name, ev))
                job = yield ev
            self.busy[name] = job.job_id
            hold = self._run_job(job, name)
            self.jobs_run += 1
            if hold > 0:
                yield self.engine.timeout(hold)
            del self.busy[name]
            self._on_done(job)
