"""Per-tenant resource quotas with admission control.

"Towards In-transit Analysis on Supercomputing Environments" frames
in-transit staging as a shared service with admission control; this
module supplies it. A :class:`TenantQuota` bounds three resources:

* ``max_concurrent`` — jobs a tenant may have running at once;
* ``staging_bytes`` — total bytes of staging memory the tenant's running
  jobs may pin (demand estimated with
  :meth:`~repro.core.runner.ScaledExperiment.staging_memory_needed`);
* ``max_cores`` — total machine cores the tenant's running jobs may hold.

:class:`QuotaManager` answers admission checks with a :class:`Denial`
(or None to admit). A denial is *transient* when the tenant is merely
over quota right now — the job stays queued and fair-share scheduling
holds it until a running job releases resources — and *permanent* when
the job alone exceeds the tenant's absolute budget (it could never run,
and holding it would deadlock the drain).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JobDemand:
    """Resources one job pins while running."""

    staging_bytes: int = 0
    cores: int = 0


@dataclass(frozen=True)
class Denial:
    """An admission refusal; ``permanent`` means never admissible."""

    reason: str
    permanent: bool = False


@dataclass(frozen=True)
class TenantQuota:
    """Resource budget for one tenant (``"*"`` = the default tenant)."""

    tenant: str
    max_concurrent: int = 2
    staging_bytes: int | None = None
    max_cores: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if self.staging_bytes is not None and self.staging_bytes <= 0:
            raise ValueError(
                f"staging_bytes must be > 0, got {self.staging_bytes}")
        if self.max_cores is not None and self.max_cores <= 0:
            raise ValueError(f"max_cores must be > 0, got {self.max_cores}")

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "max_concurrent": self.max_concurrent,
                "staging_bytes": self.staging_bytes,
                "max_cores": self.max_cores}


@dataclass
class TenantUsage:
    """Resources a tenant's running jobs currently pin."""

    running: int = 0
    staging_bytes: int = 0
    cores: int = 0


@dataclass(frozen=True)
class TrueUp:
    """One completed job's estimated-vs-measured staging reconciliation.

    ``delta_bytes`` is measured minus estimated: negative means the
    analytic admission estimate over-charged the tenant (the common,
    safe case); positive means the job actually pinned more staging
    memory than admission accounted for.
    """

    tenant: str
    job_id: str
    estimated_bytes: int
    measured_bytes: int

    @property
    def delta_bytes(self) -> int:
        return self.measured_bytes - self.estimated_bytes

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "job_id": self.job_id,
                "estimated_bytes": self.estimated_bytes,
                "measured_bytes": self.measured_bytes,
                "delta_bytes": self.delta_bytes}


class QuotaManager:
    """Admission control + usage ledger over per-tenant quotas."""

    def __init__(self, quotas: list[TenantQuota] | None = None,
                 default: TenantQuota | None = None) -> None:
        self.quotas: dict[str, TenantQuota] = {}
        for q in quotas or []:
            if q.tenant == "*":
                default = q
            else:
                self.quotas[q.tenant] = q
        self.default = default or TenantQuota("*", max_concurrent=2)
        self._usage: dict[str, TenantUsage] = {}
        #: (tenant, reason) admission refusals, in check order.
        self.denials: list[tuple[str, str]] = []
        #: Completed jobs' estimated-vs-measured reconciliations,
        #: appended by :meth:`true_up` in completion order.
        self.true_ups: list[TrueUp] = []

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default)

    def usage(self, tenant: str) -> TenantUsage:
        return self._usage.setdefault(tenant, TenantUsage())

    def set_quota(self, quota: TenantQuota) -> None:
        if quota.tenant == "*":
            self.default = quota
        else:
            self.quotas[quota.tenant] = quota

    # -- admission -----------------------------------------------------------

    def check(self, tenant: str, demand: JobDemand) -> Denial | None:
        """None to admit ``demand`` for ``tenant`` now, else a Denial."""
        quota = self.quota_for(tenant)
        denial = self._check(quota, self.usage(tenant), demand)
        if denial is not None:
            self.denials.append((tenant, denial.reason))
        return denial

    @staticmethod
    def _check(quota: TenantQuota, usage: TenantUsage,
               demand: JobDemand) -> Denial | None:
        # Absolute-budget violations first: these can never clear.
        if (quota.staging_bytes is not None
                and demand.staging_bytes > quota.staging_bytes):
            return Denial(
                f"job needs {demand.staging_bytes} staging bytes, over the "
                f"tenant budget of {quota.staging_bytes}", permanent=True)
        if quota.max_cores is not None and demand.cores > quota.max_cores:
            return Denial(
                f"job needs {demand.cores} cores, over the tenant budget "
                f"of {quota.max_cores}", permanent=True)
        if usage.running + 1 > quota.max_concurrent:
            return Denial(
                f"{usage.running}/{quota.max_concurrent} concurrent jobs "
                f"in use")
        if (quota.staging_bytes is not None
                and usage.staging_bytes + demand.staging_bytes
                > quota.staging_bytes):
            return Denial(
                f"staging budget exhausted "
                f"({usage.staging_bytes}/{quota.staging_bytes} bytes in use, "
                f"job needs {demand.staging_bytes})")
        if (quota.max_cores is not None
                and usage.cores + demand.cores > quota.max_cores):
            return Denial(
                f"core budget exhausted ({usage.cores}/{quota.max_cores} "
                f"in use, job needs {demand.cores})")
        return None

    # -- ledger --------------------------------------------------------------

    def acquire(self, tenant: str, demand: JobDemand) -> None:
        usage = self.usage(tenant)
        usage.running += 1
        usage.staging_bytes += demand.staging_bytes
        usage.cores += demand.cores

    def release(self, tenant: str, demand: JobDemand) -> None:
        usage = self.usage(tenant)
        if usage.running < 1:
            raise RuntimeError(
                f"release without acquire for tenant {tenant!r}")
        usage.running -= 1
        usage.staging_bytes -= demand.staging_bytes
        usage.cores -= demand.cores

    # -- reconciliation ------------------------------------------------------

    def true_up(self, tenant: str, job_id: str, estimated_bytes: int,
                measured_bytes: int) -> TrueUp:
        """Reconcile a completed job's admission estimate against the
        capacity ledger's measured peak.

        Admission charged ``estimated_bytes`` (the analytic
        ``staging_memory_needed`` bound) for the job's whole runtime and
        :meth:`release` returns exactly that, so the running usage books
        stay balanced; the true-up records how far the estimate was from
        the ledger-measured truth, per tenant, for reporting and for
        tightening future admission estimates.
        """
        rec = TrueUp(tenant=tenant, job_id=job_id,
                     estimated_bytes=int(estimated_bytes),
                     measured_bytes=int(measured_bytes))
        self.true_ups.append(rec)
        return rec

    def true_up_summary(self, tenant: str) -> dict:
        """Summed estimated/measured/delta bytes over a tenant's
        completed (trued-up) jobs."""
        recs = [r for r in self.true_ups if r.tenant == tenant]
        return {"jobs": len(recs),
                "estimated_bytes": sum(r.estimated_bytes for r in recs),
                "measured_bytes": sum(r.measured_bytes for r in recs),
                "delta_bytes": sum(r.delta_bytes for r in recs)}
