"""Sharded DataSpaces: the paper's DHT hashing design scaled out.

One :class:`~repro.staging.dataspaces.DataSpaces` instance models one
staging area: a single transport fabric, one scheduler, one bucket pool.
The service layer runs *concurrent* campaigns, so staging traffic must be
isolated and load-balanced; :class:`ShardedDataSpaces` provides that by
running N independent tuple-space shards behind one facade and routing
every region key across them with a :class:`~repro.staging.hashing.ServiceRing`
— the same consistent hashing the paper credits for balancing RPC load
over DataSpaces servers, applied one level up.

Each shard owns its own :class:`~repro.transport.dart.DartTransport`
(an independent NIC partition of the scaled-out fabric), its own
scheduler (with a per-shard trace lane), and a contiguous slice of the
bucket pool, so one tenant's burst saturates one shard's queue without
stalling the others. :meth:`balance_report` quantifies how even the
split came out.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.costmodel.models import CostModel
from repro.des import Engine
from repro.staging.dataspaces import Bounds, DataSpaces
from repro.staging.hashing import ServiceRing
from repro.staging.scheduler import AssignmentRecord
from repro.transport.dart import DartTransport


@dataclass
class ShardLoad:
    """Traffic landed on one shard."""

    shard: int
    tasks: int = 0
    bytes: int = 0
    rpcs: int = 0
    buckets: int = 0

    def to_dict(self) -> dict[str, int]:
        return {"shard": self.shard, "tasks": self.tasks, "bytes": self.bytes,
                "rpcs": self.rpcs, "buckets": self.buckets}


@dataclass
class ShardBalanceReport:
    """How evenly the DHT spread staging traffic across shards."""

    loads: list[ShardLoad]
    virtual_nodes: int = 0

    @property
    def n_shards(self) -> int:
        return len(self.loads)

    def imbalance(self, attr: str = "tasks") -> float:
        """Max-over-mean ratio of per-shard ``attr`` (1.0 = perfectly even)."""
        values = [getattr(load, attr) for load in self.loads]
        total = sum(values)
        if not values or total == 0:
            return 1.0
        return max(values) / (total / len(values))

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "virtual_nodes": self.virtual_nodes,
            "imbalance_tasks": self.imbalance("tasks"),
            "imbalance_bytes": self.imbalance("bytes"),
            "loads": [load.to_dict() for load in self.loads],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ShardBalanceReport":
        return cls(loads=[ShardLoad(shard=x["shard"], tasks=x["tasks"],
                                    bytes=x["bytes"], rpcs=x["rpcs"],
                                    buckets=x["buckets"])
                          for x in d.get("loads", [])],
                   virtual_nodes=d.get("virtual_nodes", 0))

    @classmethod
    def merge(cls, reports: Sequence["ShardBalanceReport"]
              ) -> "ShardBalanceReport":
        """Aggregate several reports by shard index (service-level view
        over many jobs; jobs with fewer shards fold into the low indices)."""
        n = max((r.n_shards for r in reports), default=0)
        loads = [ShardLoad(shard=i) for i in range(n)]
        for report in reports:
            for load in report.loads:
                agg = loads[load.shard]
                agg.tasks += load.tasks
                agg.bytes += load.bytes
                agg.rpcs += load.rpcs
                agg.buckets = max(agg.buckets, load.buckets)
        vn = max((r.virtual_nodes for r in reports), default=0)
        return cls(loads=loads, virtual_nodes=vn)


@dataclass
class _ShardStats:
    tasks: int = 0
    bytes: int = 0
    buckets: int = 0


class ShardedDataSpaces:
    """N independent DataSpaces shards behind ServiceRing DHT routing.

    Mirrors the single-space workflow API (``submit_insitu_result``,
    ``spawn_buckets``, ``shutdown_buckets``, ``drained``, ``all_results``,
    ``task_accounting``) and the tuple-space API (``put``/``get``/
    ``query``/``versions``/``gc_versions``), routing each call to the
    shard owning the key:

    * tuple-space objects route by ``"{name}@{version}"``;
    * workflow tasks route by their region key ``"{analysis}/t{timestep}"``,
      so one analysis step's traffic stays on one shard while distinct
      (analysis, step) pairs spread out.

    The fault knobs are applied to every shard; faults are contained per
    shard (a shard degrading to in-situ fallback does not touch its
    peers' queues).
    """

    def __init__(self, engine: Engine, network: Any, n_shards: int,
                 n_servers: int = 4, cost_model: CostModel | None = None,
                 virtual_nodes: int = 64,
                 rpc_latency: float = 2.0e-5,
                 lease_timeout: float | None = None,
                 bucket_restart_delay: float | None = None,
                 max_bucket_restarts: int = 0,
                 insitu_fallback: bool = True) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.engine = engine
        self.n_shards = n_shards
        self.ring = ServiceRing(n_shards, virtual_nodes=virtual_nodes)
        # Service cores split across shards: each shard hashes its own
        # keyspace over its slice of the DataSpaces server pool.
        per_shard_servers = max(1, n_servers // n_shards)
        self.transports = [DartTransport(engine, network)
                           for _ in range(n_shards)]
        self.shards = [
            DataSpaces(engine, self.transports[i],
                       n_servers=per_shard_servers,
                       cost_model=cost_model,
                       rpc_latency=rpc_latency,
                       lease_timeout=lease_timeout,
                       bucket_restart_delay=bucket_restart_delay,
                       max_bucket_restarts=max_bucket_restarts,
                       insitu_fallback=insitu_fallback,
                       name=f"shard{i}")
            for i in range(n_shards)
        ]
        self._stats = [_ShardStats() for _ in range(n_shards)]
        #: Producer span anchoring the next submitted task's causal flow
        #: (same contract as :attr:`DataSpaces.flow_src`).
        self.flow_src: Any | None = None

    # -- routing -------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """Shard index owning ``key`` under the DHT."""
        return self.ring.server_for(key)

    @staticmethod
    def region_key(analysis: str, timestep: int) -> str:
        """Routing key for one (analysis, analysed step) region."""
        return f"{analysis}/t{timestep}"

    # -- tuple space ---------------------------------------------------------

    def _object_shard(self, name: str, version: int) -> DataSpaces:
        return self.shards[self.shard_for(f"{name}@{version}")]

    def put(self, name: str, version: int, data: Any,
            bounds: Bounds | None = None) -> None:
        self._object_shard(name, version).put(name, version, data,
                                              bounds=bounds)

    def get(self, name: str, version: int,
            bounds: Bounds | None = None) -> Any:
        return self._object_shard(name, version).get(name, version,
                                                     bounds=bounds)

    def versions(self, name: str) -> list[int]:
        out: set[int] = set()
        for shard in self.shards:
            out.update(shard.versions(name))
        return sorted(out)

    def query(self, name: str, version_lo: int, version_hi: int
              ) -> list[tuple[int, Any]]:
        if version_hi < version_lo:
            raise ValueError(f"empty version range [{version_lo}, {version_hi}]")
        out: list[tuple[int, Any]] = []
        for v in self.versions(name):
            if version_lo <= v <= version_hi:
                found = self._object_shard(name, v).query(name, v, v)
                out.extend(found)
        return out

    def stored_bytes(self) -> int:
        return sum(shard.stored_bytes() for shard in self.shards)

    def gc_versions(self, name: str, keep_latest: int) -> int:
        """Global GC: versions of ``name`` live on different shards, so
        the facade decides which die and revokes each from its owner."""
        if keep_latest < 0:
            raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
        versions = self.versions(name)
        doomed = versions[:max(0, len(versions) - keep_latest)]
        removed = 0
        for v in doomed:
            if self._object_shard(name, v).drop_version(name, v):
                removed += 1
        return removed

    # -- workflow ------------------------------------------------------------

    def submit_insitu_result(self, analysis: str, timestep: int,
                             source_node: str, payload: Any,
                             nbytes: int | None = None,
                             **kwargs: Any) -> Any:
        """Route one in-situ result to its region's shard (data-ready RPC)."""
        idx = self.shard_for(self.region_key(analysis, timestep))
        shard = self.shards[idx]
        stats = self._stats[idx]
        stats.tasks += 1
        stats.bytes += int(nbytes or 0)
        shard.flow_src = self.flow_src
        try:
            return shard.submit_insitu_result(
                analysis=analysis, timestep=timestep,
                source_node=source_node, payload=payload, nbytes=nbytes,
                **kwargs)
        finally:
            shard.flow_src = None

    def spawn_buckets(self, names: Sequence[str]) -> list[Any]:
        """Split the bucket pool contiguously across shards.

        Every shard must end up with at least one bucket — a shard with
        tasks but no staging cores would never drain.
        """
        if len(names) < self.n_shards:
            raise ValueError(
                f"need at least one bucket per shard: got {len(names)} "
                f"buckets for {self.n_shards} shards")
        buckets: list[Any] = []
        for i, shard in enumerate(self.shards):
            slice_names = list(names[i::self.n_shards])
            self._stats[i].buckets = len(slice_names)
            buckets.extend(shard.spawn_buckets(slice_names))
        return buckets

    def shutdown_buckets(self) -> None:
        for shard in self.shards:
            shard.shutdown_buckets()

    def live_buckets(self) -> int:
        return sum(shard.live_buckets() for shard in self.shards)

    def drained(self):
        """Event triggering once every shard has drained."""
        ev = self.engine.event()

        def wait_all():
            for shard in self.shards:
                yield shard.drained()
            ev.succeed(None)

        self.engine.process(wait_all(), name="sharded-drain")
        return ev

    def all_results(self) -> list:
        out = [r for shard in self.shards for r in shard.all_results()]
        out.sort(key=lambda r: r.finish_time)
        return out

    def assignment_records(self) -> list[AssignmentRecord]:
        out = [rec for shard in self.shards
               for rec in shard.scheduler.assignments]
        out.sort(key=lambda rec: rec.assign_time)
        return out

    def failed_task_ids(self) -> list[str]:
        return [tid for shard in self.shards
                for tid in shard.failed_task_ids()]

    # -- accounting ----------------------------------------------------------

    @property
    def submitted(self) -> int:
        return sum(shard.submitted for shard in self.shards)

    @property
    def completed(self) -> int:
        return sum(shard.completed for shard in self.shards)

    @property
    def failed(self) -> int:
        return sum(shard.failed for shard in self.shards)

    def task_accounting(self) -> dict[str, int]:
        totals = {"submitted": 0, "completed": 0, "failed": 0,
                  "outstanding": 0}
        for shard in self.shards:
            for key, value in shard.task_accounting().items():
                totals[key] += value
        return totals

    def probe_map(self) -> dict[str, Callable[[], float]]:
        """Aggregated standard gauges (same keys as
        :func:`repro.obs.probes.standard_probes`) plus per-shard queue
        depths, for the live :class:`~repro.obs.probes.ProbeSampler`."""
        def queue_depth() -> float:
            return float(sum(s.scheduler.pending_tasks for s in self.shards))

        def idle_buckets() -> float:
            return float(sum(s.scheduler.idle_buckets for s in self.shards))

        def busy_buckets() -> float:
            return float(sum(s.live_buckets() - s.scheduler.idle_buckets
                             for s in self.shards))

        def nic_busy() -> float:
            return float(sum(t.nic_busy_channels() for t in self.transports))

        def live_bytes() -> float:
            return float(sum(t.registry.live_bytes()
                             for t in self.transports))

        probes: dict[str, Callable[[], float]] = {
            "sched.queue_depth": queue_depth,
            "sched.idle_buckets": idle_buckets,
            "bucket.busy": busy_buckets,
            "nic.busy_channels": nic_busy,
            "rdma.live_bytes": live_bytes,
        }
        for i, shard in enumerate(self.shards):
            probes[f"shard.{i}.queue_depth"] = (
                lambda s=shard: float(s.scheduler.pending_tasks))
        return probes

    def balance_report(self) -> ShardBalanceReport:
        """Per-shard traffic report: tasks/bytes routed, RPCs handled,
        buckets assigned — the DHT load-balance evidence."""
        loads = []
        for i, shard in enumerate(self.shards):
            stats = self._stats[i]
            loads.append(ShardLoad(
                shard=i, tasks=stats.tasks, bytes=stats.bytes,
                rpcs=sum(shard.server_rpc_counts),
                buckets=stats.buckets))
        return ShardBalanceReport(loads=loads,
                                  virtual_nodes=self.ring.virtual_nodes)
