"""Event heap, simulated clock, and generator-driven processes.

The engine is deliberately tiny but complete enough to express the paper's
asynchronous machinery: timeouts, one-shot events (RDMA completion
notifications, data-ready/bucket-ready messages), and process join.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from typing import Any

from repro.backend import kernel
from repro.obs.tracer import get_tracer


class HeapEventQueue:
    """The reference event queue: a binary heap ordered by ``(when, seq)``.

    ``seq`` is the engine's monotone schedule counter, so equal-timestamp
    events always dispatch in the order they were scheduled — the
    determinism contract every backend's queue must preserve.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[Any], None], Any]] = []

    def push(self, when: float, seq: int, fn: Callable[[Any], None],
             arg: Any) -> None:
        heapq.heappush(self._heap, (when, seq, fn, arg))

    def next_time(self) -> float | None:
        """Earliest pending timestamp (``None`` when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, when: float
                ) -> tuple[Callable[[Any], None], Any] | None:
        """Pop the next event scheduled at exactly ``when`` in ``seq``
        order, or ``None`` once no event remains at that timestamp."""
        heap = self._heap
        if heap and heap[0][0] == when:
            _when, _seq, fn, arg = heapq.heappop(heap)
            return fn, arg
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@kernel("des.event_queue", traced=False)
def make_event_queue() -> HeapEventQueue:
    """Create the engine's pending-event queue (backend seam).

    The reference implementation is the binary heap above; the numpy
    backend substitutes a calendar/batched-heap queue that extracts whole
    same-timestamp runs in one array operation while preserving exact
    ``(when, seq)`` dispatch order.
    """
    return HeapEventQueue()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class EventHandle:
    """A one-shot event that processes can wait on and code can trigger.

    An event is *triggered* at most once with an optional value; every
    process waiting on it is resumed at the engine's current time (or at the
    trigger time if scheduled via :meth:`Engine.schedule_event`).

    An untriggered event can be *cancelled*: a later ``succeed`` becomes a
    silent no-op. This is what makes timeouts revocable — a lease or
    watchdog timeout racing a completion cancels the loser instead of
    raising on the second trigger.
    """

    __slots__ = ("engine", "triggered", "cancelled", "value", "_waiters",
                 "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.cancelled = False
        self.value: Any = None
        self._waiters: list[ProcessHandle] = []
        self.callbacks: list[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> "EventHandle":
        """Trigger the event now, resuming all waiters.

        A cancelled event absorbs the trigger silently; triggering an
        already-triggered (and not cancelled) event is still an error.
        """
        if self.cancelled:
            return self
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        tracer = self.engine._tracer
        if tracer.enabled:
            tracer.counter("des.event_trigger")
        for cb in self.callbacks:
            cb(value)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule(0.0, proc._resume, value)
        return self

    def cancel(self) -> bool:
        """Revoke an untriggered event; returns whether it was revoked.

        After cancellation a pending ``succeed`` (e.g. a scheduled timeout
        firing) is ignored. Cancelling an already-triggered event is a
        no-op returning ``False`` — the race was lost, nothing to revoke.
        """
        if self.triggered:
            return False
        if not self.cancelled:
            self.cancelled = True
            self._waiters.clear()
        return True

    def _add_waiter(self, proc: "ProcessHandle") -> None:
        if self.triggered:
            self.engine._schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class ProcessHandle:
    """A running generator process.

    Processes yield:
      * ``EventHandle`` — suspend until the event triggers;
      * ``ProcessHandle`` — suspend until that process finishes (join);
      * ``None`` — yield the engine loop without advancing time.
    """

    __slots__ = ("engine", "generator", "name", "finished", "result", "_done_event")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._done_event = EventHandle(engine)

    # -- process protocol --------------------------------------------------

    def _resume(self, value: Any = None) -> None:
        if self.finished:
            return
        tracer = self.engine._tracer
        if tracer.enabled:
            tracer.counter("des.process_resume")
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self.engine._schedule(0.0, self._resume, None)
        elif isinstance(target, EventHandle):
            target._add_waiter(self)
        elif isinstance(target, ProcessHandle):
            target._done_event._add_waiter(self)
        else:
            self._throw(TypeError(f"process yielded unsupported object {target!r}"))

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self._done_event.succeed(result)

    # -- public API --------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: it sees :class:`Interrupt` at its yield."""
        self.engine._schedule(0.0, self._throw, Interrupt(cause))

    @property
    def done(self) -> EventHandle:
        """Event triggered when the process returns."""
        return self._done_event


class Engine:
    """Deterministic discrete-event engine with a float-seconds clock."""

    def __init__(self) -> None:
        self._queue = make_event_queue()
        self._seq = 0
        self.now: float = 0.0
        self._processes: list[ProcessHandle] = []
        #: Optional live sampler (``repro.obs.probes.ProbeSampler``):
        #: notified via ``on_advance(now)`` as the clock advances.
        self._probe: Any = None
        # Capture the active tracer once; when tracing is enabled the
        # engine's clock becomes the tracer's trace clock.
        self._tracer = get_tracer()
        if self._tracer.enabled:
            self._tracer.attach_engine(self)

    def attach_probe(self, sampler: Any) -> None:
        """Install a periodic sampler; it sees every clock advance.

        The sampler needs one method, ``on_advance(now: float)``. Attach
        before :meth:`run`; pass ``None`` to detach.
        """
        self._probe = sampler

    def idle(self) -> bool:
        """True once no event remains (``run`` would return immediately).

        Live viewers (``repro top``) drive the engine in bounded slices
        — ``run(until=...)`` — and use this to know when the batch has
        fully drained.
        """
        return self._queue.next_time() is None

    def next_event_time(self) -> float | None:
        """Earliest pending timestamp (None when idle). ``run(until=
        next_event_time())`` processes exactly that timestamp's events
        and leaves the clock there — no overshoot past the drain."""
        return self._queue.next_time()

    # -- scheduling primitives ----------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[Any], None], arg: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        self._queue.push(self.now + delay, self._seq, fn, arg)

    def event(self) -> EventHandle:
        """Create an untriggered one-shot event."""
        return EventHandle(self)

    def timeout(self, delay: float, value: Any = None) -> EventHandle:
        """Event that triggers ``delay`` simulated seconds from now."""
        if self._tracer.enabled:
            self._tracer.counter("des.timeout")
        ev = EventHandle(self)
        self._schedule(delay, ev.succeed, value)
        return ev

    def schedule_event(self, ev: EventHandle, delay: float, value: Any = None) -> None:
        """Trigger an existing event ``delay`` seconds from now."""
        self._schedule(delay, ev.succeed, value)

    def any_of(self, *events: EventHandle) -> EventHandle:
        """Race several events: an event triggering with ``(index, value)``
        of the first to fire.

        Later finishers are absorbed (their callbacks find the race already
        decided), so a timeout racing a completion is safe to express::

            winner, value = yield engine.any_of(done, engine.timeout(lease))
            if winner == 1:  # lease expired first
                ...

        Events already triggered when the race is built win immediately, in
        argument order.
        """
        if not events:
            raise ValueError("any_of needs at least one event")
        race = EventHandle(self)

        def settle(index: int, value: Any) -> None:
            if not race.triggered and not race.cancelled:
                race.succeed((index, value))

        for i, ev in enumerate(events):
            if ev.triggered:
                settle(i, ev.value)
            else:
                ev.callbacks.append(
                    lambda value, i=i: settle(i, value))
        return race

    def process(self, generator: Generator, name: str = "") -> ProcessHandle:
        """Register and start a generator process at the current time."""
        proc = ProcessHandle(self, generator, name)
        self._processes.append(proc)
        if self._tracer.enabled:
            self._tracer.counter("des.process_started")
            self._tracer.instant("process.start", lane="des",
                                 process=proc.name)
        self._schedule(0.0, proc._resume, None)
        return proc

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"call_at({when}) is before now ({self.now})")
        self._schedule(when - self.now, lambda _: fn(), None)

    # -- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the final simulated time.
        """
        traced = self._tracer.enabled
        probe = self._probe
        queue = self._queue
        while True:
            when = queue.next_time()
            if when is None:
                break
            if until is not None and when > until:
                self.now = until
                return self.now
            self.now = when
            # Drain the whole same-timestamp run (events scheduled *during*
            # the run at the same time carry larger seqs and are picked up
            # by subsequent pop_due calls, preserving (when, seq) order).
            while True:
                item = queue.pop_due(when)
                if item is None:
                    break
                fn, arg = item
                if probe is not None:
                    probe.on_advance(when)
                if traced:
                    self._tracer.counter("des.dispatch")
                fn(arg)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_done(self, proc: ProcessHandle, limit: float = 1e12) -> Any:
        """Run until ``proc`` completes; returns its result.

        Raises ``RuntimeError`` if the event heap drains first (deadlock) or
        the clock passes ``limit``.
        """
        probe = self._probe
        queue = self._queue
        while not proc.finished:
            when = queue.next_time()
            if when is None:
                raise RuntimeError(f"deadlock: process {proc.name!r} never finished")
            if self.now > limit:
                raise RuntimeError(f"time limit {limit} exceeded waiting for {proc.name!r}")
            fn, arg = queue.pop_due(when)
            self.now = when
            if probe is not None:
                probe.on_advance(when)
            fn(arg)
        return proc.result
