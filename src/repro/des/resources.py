"""FIFO stores and counted resources for the DES engine.

``Store`` models the DataSpaces task queue and free-bucket list: producers
``put`` items, consumers ``yield store.get()``. ``Resource`` models counted
capacity (e.g. a node's cores, concurrent RDMA channels, I/O servers).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.des.engine import Engine, EventHandle


class Store:
    """Unbounded FIFO item queue with blocking ``get``.

    Items are delivered to getters in arrival order; getters are served in
    request order (FCFS), which is exactly the paper's bucket-assignment
    policy.
    """

    def __init__(self, engine: Engine, name: str = "store") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[EventHandle] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Insert an item; wakes the oldest pending getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> EventHandle:
        """Return an event that triggers with the next available item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def items_snapshot(self) -> list[Any]:
        """Copy of queued items (for instrumentation/tests)."""
        return list(self._items)


class Resource:
    """Counted resource with FCFS acquisition.

    Usage in a process::

        grant = yield resource.acquire()
        ...
        resource.release()
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[EventHandle] = deque()

    def acquire(self) -> EventHandle:
        """Event that triggers once a unit of capacity is granted."""
        ev = self.engine.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit of capacity; hands it to the oldest waiter if any.

        Cancelled (withdrawn) acquire requests are skipped — a process
        that died while queueing must not swallow the unit.
        """
        if self.in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.cancelled:
                continue
            ev.succeed(self)
            return
        self.in_use -= 1

    def cancel(self, grant: EventHandle) -> None:
        """Withdraw an acquire request (the requester is aborting).

        If the grant already landed, the unit is returned to the pool;
        otherwise the queued request is revoked so a later ``release``
        cannot hand capacity to a dead process.
        """
        if grant.triggered:
            self.release()
        elif grant.cancel():
            try:
                self._waiters.remove(grant)
            except ValueError:
                pass
