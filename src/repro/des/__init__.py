"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based DES engine in the style of SimPy:

* :class:`~repro.des.engine.Engine` owns the event heap and simulated clock;
* processes are plain generator functions that ``yield`` events
  (:meth:`Engine.timeout`, :class:`~repro.des.engine.EventHandle`, store gets);
* :class:`~repro.des.resources.Store` and
  :class:`~repro.des.resources.Resource` provide FIFO queues and counted
  resources used to model staging buckets, network links and I/O servers.

Determinism: ties in time are broken by insertion order (a monotonically
increasing sequence number), so repeated runs produce identical traces.
"""

from repro.des.engine import Engine, EventHandle, Interrupt, ProcessHandle
from repro.des.resources import Resource, Store

__all__ = [
    "Engine",
    "EventHandle",
    "Interrupt",
    "ProcessHandle",
    "Resource",
    "Store",
]
