"""Binary-swap parallel image compositing.

The fully in-situ renderer at the paper's scale composites partial images
across 4480 ranks; production in-situ renderers (including [3]) use
*binary swap*: in round r, rank pairs differing in bit r exchange
complementary halves of their current image region and composite the half
they keep; after log2(p) rounds each rank owns a fully composited 1/p of
the image, gathered at the end. Per-rank traffic is ~1 image regardless
of p, versus ~p images for naive serial compositing at a single root.

This module provides the functional algorithm over the virtual ranks
(verified equal to direct compositing) and its analytic cost model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.gemini import GeminiNetwork


def _over(front_rgb: np.ndarray, front_a: np.ndarray,
          back_rgb: np.ndarray, back_a: np.ndarray
          ) -> tuple[np.ndarray, np.ndarray]:
    """Premultiplied 'over' of two partial images."""
    weight = 1.0 - front_a
    return (front_rgb + weight[..., None] * back_rgb,
            front_a + weight * back_a)


def binary_swap_composite(partials: list[tuple[np.ndarray, np.ndarray]],
                          order: list[int]
                          ) -> tuple[np.ndarray, np.ndarray, int]:
    """Composite per-rank (premultiplied RGB, alpha) images by binary swap.

    ``order`` is the front-to-back visibility order of the ranks (see
    :func:`~repro.analysis.visualization.compositing.visibility_order`);
    the swap runs over ranks *in that order*, so pairwise composites are
    always front-over-back. The rank count must be a power of two (pad
    with empty partials otherwise — helper below).

    Returns ``(rgb, alpha, bytes_exchanged_per_rank)``; the byte count is
    the maximum over ranks of the bytes each sent, for the cost model.
    """
    p = len(partials)
    if p == 0:
        raise ValueError("no partial images")
    if p & (p - 1):
        raise ValueError(f"binary swap needs a power-of-two rank count, got {p}")
    if sorted(order) != list(range(p)):
        raise ValueError("order must be a permutation of the ranks")
    h, w, _ = partials[0][0].shape

    # Work in visibility order: position i holds the i-th closest partial.
    rgb = [partials[r][0].reshape(h * w, 3).copy() for r in order]
    alpha = [partials[r][1].reshape(h * w).copy() for r in order]
    # Each position's current region of responsibility [lo, hi).
    region = [(0, h * w)] * p
    bytes_sent = [0] * p

    rounds = int(math.log2(p))
    for r in range(rounds):
        stride = 1 << r
        for i in range(p):
            partner = i ^ stride
            if partner < i:
                continue
            lo, hi = region[i]
            assert region[partner] == (lo, hi)
            mid = (lo + hi) // 2
            # i (closer in visibility order) keeps the front half-region
            # composited over partner's; partner keeps the back half.
            # (Regions are image-space halves; "front/back" refers to the
            # compositing operand order, i being in front of partner.)
            i_rgb, i_a = rgb[i], alpha[i]
            p_rgb, p_a = rgb[partner], alpha[partner]
            # exchange: i sends its [mid, hi) to partner, receives
            # partner's [lo, mid).
            bytes_sent[i] += (hi - mid) * 4 * 8
            bytes_sent[partner] += (mid - lo) * 4 * 8
            new_i_rgb, new_i_a = _over(i_rgb[lo:mid], i_a[lo:mid],
                                       p_rgb[lo:mid], p_a[lo:mid])
            new_p_rgb, new_p_a = _over(i_rgb[mid:hi], i_a[mid:hi],
                                       p_rgb[mid:hi], p_a[mid:hi])
            i_rgb[lo:mid], i_a[lo:mid] = new_i_rgb, new_i_a
            p_rgb[mid:hi], p_a[mid:hi] = new_p_rgb, new_p_a
            region[i] = (lo, mid)
            region[partner] = (mid, hi)

    # Final gather: each position contributes its region.
    out_rgb = np.zeros((h * w, 3))
    out_a = np.zeros(h * w)
    for i in range(p):
        lo, hi = region[i]
        out_rgb[lo:hi] = rgb[i][lo:hi]
        out_a[lo:hi] = alpha[i][lo:hi]
    return out_rgb.reshape(h, w, 3), out_a.reshape(h, w), max(bytes_sent)


def pad_to_power_of_two(partials: list[tuple[np.ndarray, np.ndarray]]
                        ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Append fully transparent partials up to the next power of two."""
    if not partials:
        raise ValueError("no partial images")
    p = len(partials)
    target = 1 << (p - 1).bit_length()
    h, w, _ = partials[0][0].shape
    empty = (np.zeros((h, w, 3)), np.zeros((h, w)))
    return list(partials) + [empty] * (target - p)


def binary_swap_time(net: GeminiNetwork, n_ranks: int,
                     image_bytes: int) -> float:
    """Critical-path time of the swap + final gather on the network model.

    Round r exchanges ``image_bytes / 2^(r+1)`` per rank; the gather
    delivers ``image_bytes / p`` from each rank to the root.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if image_bytes < 0:
        raise ValueError("image_bytes must be >= 0")
    if n_ranks == 1:
        return 0.0
    p = 1 << (n_ranks - 1).bit_length()
    total = 0.0
    for r in range(int(math.log2(p))):
        total += net.transfer_time(image_bytes >> (r + 1))
    # root ingest of p-1 fragments of image_bytes / p
    total += (p - 1) * net.transfer_time(max(image_bytes // p, 1))
    return total


def direct_send_time(net: GeminiNetwork, n_ranks: int,
                     image_bytes: int) -> float:
    """Naive alternative: every rank sends its full partial to one root."""
    if n_ranks <= 1:
        return 0.0
    return (n_ranks - 1) * net.transfer_time(image_bytes)
