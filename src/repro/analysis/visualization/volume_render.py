"""Ray-marching kernels shared by all rendering modes.

Front-to-back alpha compositing with trilinear sampling. The marcher is
vectorised over all pixels at once: at each step every live ray samples
the volume and composites, with early-out once every ray saturates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.transfer_function import TransferFunction

#: Sampler signature: (N, 3) float positions -> (N,) values; positions
#: outside the volume must return a value the transfer function maps to
#: zero opacity (samplers here clamp and mask instead).
Sampler = Callable[[np.ndarray], np.ndarray]


def trilinear_sampler(field: np.ndarray) -> Sampler:
    """Trilinear interpolation on a dense grid, clamped at the borders.

    Positions outside the volume are masked to the field minimum (which a
    well-formed transfer function maps to zero opacity).
    """
    field = np.asarray(field, dtype=np.float64)
    shape = np.asarray(field.shape, dtype=np.float64)
    fill = float(field.min())

    def sample(pos: np.ndarray) -> np.ndarray:
        pos = np.asarray(pos, dtype=np.float64)
        inside = np.all((pos > -0.5) & (pos < shape - 0.5), axis=-1)
        p = np.clip(pos, 0.0, shape - 1.0)
        i0 = np.minimum(p.astype(np.int64), (shape - 2).astype(np.int64))
        i0 = np.maximum(i0, 0)
        frac = p - i0
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        fx, fy, fz = frac[..., 0], frac[..., 1], frac[..., 2]
        c000 = field[x0, y0, z0]
        c100 = field[x0 + 1, y0, z0]
        c010 = field[x0, y0 + 1, z0]
        c110 = field[x0 + 1, y0 + 1, z0]
        c001 = field[x0, y0, z0 + 1]
        c101 = field[x0 + 1, y0, z0 + 1]
        c011 = field[x0, y0 + 1, z0 + 1]
        c111 = field[x0 + 1, y0 + 1, z0 + 1]
        c00 = c000 * (1 - fx) + c100 * fx
        c10 = c010 * (1 - fx) + c110 * fx
        c01 = c001 * (1 - fx) + c101 * fx
        c11 = c011 * (1 - fx) + c111 * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        out = c0 * (1 - fz) + c1 * fz
        return np.where(inside, out, fill)

    return sample


def march_rays(sampler: Sampler, origins: np.ndarray, direction: np.ndarray,
               t_len: float, tf: TransferFunction, step: float = 0.5,
               sample_mask: Callable[[np.ndarray], np.ndarray] | None = None,
               ) -> tuple[np.ndarray, np.ndarray]:
    """Front-to-back composite along parallel rays.

    Returns ``(rgb (H, W, 3), alpha (H, W))``. ``sample_mask``, when
    given, zeroes the contribution of samples outside a region — the hook
    block-parallel rendering uses to restrict a rank to its own brick.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    h, w, _ = origins.shape
    rgb = np.zeros((h, w, 3))
    alpha = np.zeros((h, w))
    flat_origins = origins.reshape(-1, 3)
    n_steps = int(np.ceil(t_len / step))
    for k in range(n_steps):
        t = k * step
        pos = flat_origins + t * direction
        vals = sampler(pos)
        rgba = tf(vals)
        a = 1.0 - np.power(1.0 - rgba[..., 3], step)  # per-step opacity
        if sample_mask is not None:
            a = a * sample_mask(pos)
        a = a.reshape(h, w)
        color = rgba[..., :3].reshape(h, w, 3)
        weight = (1.0 - alpha) * a
        rgb += weight[..., None] * color
        alpha += weight
        # Early out only once every ray is numerically opaque — a looser
        # threshold would make results depend on compositing grouping.
        if np.all(alpha >= 1.0 - 1e-12):
            break
    return rgb, alpha


def render_volume(field: np.ndarray, camera: Camera, tf: TransferFunction,
                  step: float = 0.5, background: float = 0.0
                  ) -> np.ndarray:
    """Serial reference renderer on a dense global field.

    Returns an ``(H, W, 3)`` image in [0, 1].
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise ValueError(f"expected a 3-D field, got shape {field.shape}")
    origins, direction, t_len = camera.rays(field.shape)
    shape = np.asarray(field.shape, dtype=np.float64)

    def inside_domain(pos: np.ndarray) -> np.ndarray:
        return np.all((pos > -0.5) & (pos < shape - 0.5), axis=-1).astype(np.float64)

    rgb, alpha = march_rays(trilinear_sampler(field), origins, direction,
                            t_len, tf, step, sample_mask=inside_domain)
    return rgb + (1.0 - alpha[..., None]) * background
