"""Volume rendering: the paper's two visualization modes (§III, Fig. 2).

* **Fully in-situ**: every rank ray-casts its full-resolution block; the
  partial images are alpha-composited back-to-front in block visibility
  order — high quality, runs on the simulation cores
  (:func:`~repro.analysis.visualization.compositing.render_blocks_insitu`).
* **Hybrid in-situ/in-transit**: ranks down-sample their blocks at a
  stride (every 8th grid point in Fig. 2) and ship the small copies to a
  single serial staging core, which builds a *look-up table* of block
  bounds and ray-casts directly against it — no visibility sort, no volume
  reconstruction (:func:`~repro.analysis.visualization.downsample.render_intransit`).

Both modes share the camera, transfer function, and ray-marching kernels,
so image differences reflect only the down-sampling — exactly the Fig. 2
comparison.
"""

from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.transfer_function import TransferFunction
from repro.analysis.visualization.volume_render import render_volume
from repro.analysis.visualization.compositing import render_blocks_insitu
from repro.analysis.visualization.downsample import (
    BlockLUT,
    DownsampledBlock,
    downsample_block,
    downsample_decomposed,
    render_intransit,
)
from repro.analysis.visualization.parallel_compositing import (
    binary_swap_composite,
    binary_swap_time,
    direct_send_time,
    pad_to_power_of_two,
)
from repro.analysis.visualization.views import ViewSession, ViewSpec

__all__ = [
    "Camera",
    "TransferFunction",
    "render_volume",
    "render_blocks_insitu",
    "BlockLUT",
    "DownsampledBlock",
    "downsample_block",
    "downsample_decomposed",
    "render_intransit",
    "binary_swap_composite",
    "binary_swap_time",
    "direct_send_time",
    "pad_to_power_of_two",
    "ViewSession",
    "ViewSpec",
]
