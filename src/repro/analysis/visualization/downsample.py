"""The hybrid visualization mode: in-situ down-sampling + in-transit render.

In-situ, each rank takes every ``stride``-th grid point of its brick
(Fig. 2 uses every 8th) — a tiny, cheap copy that is shipped to a single
staging core. In-transit, that core builds a *look-up table* recording
each block's global bounds "to encode their spatial relationship", and
ray-casts directly against the collection: each sample position is routed
to its block via the LUT and reads the nearest down-sampled voxel — no
visibility sorting, no volume reconstruction (§III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.transfer_function import TransferFunction
from repro.analysis.visualization.volume_render import march_rays
from repro.vmpi.decomp import BlockDecomposition3D


@dataclass(frozen=True)
class DownsampledBlock:
    """One rank's down-sampled brick plus its placement metadata."""

    data: np.ndarray                  # (ceil(sx/stride), ...) samples
    lo: tuple[int, int, int]          # global bounds of the source brick
    hi: tuple[int, int, int]
    stride: int

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        expect = tuple(-(-(h - l) // self.stride)
                       for l, h in zip(self.lo, self.hi))
        if self.data.shape != expect:
            raise ValueError(
                f"data shape {self.data.shape} != expected {expect} for "
                f"bounds {self.lo}..{self.hi} at stride {self.stride}")

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


def downsample_block(block_data: np.ndarray, lo: tuple[int, int, int],
                     hi: tuple[int, int, int], stride: int) -> DownsampledBlock:
    """The in-situ stage: every ``stride``-th point of the brick."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    data = np.ascontiguousarray(block_data[::stride, ::stride, ::stride],
                                dtype=np.float64)
    return DownsampledBlock(data=data, lo=tuple(lo), hi=tuple(hi), stride=stride)


def downsample_decomposed(field: np.ndarray, decomp: BlockDecomposition3D,
                          stride: int) -> list[DownsampledBlock]:
    """Run the in-situ stage for every rank of a decomposition."""
    field = np.asarray(field, dtype=np.float64)
    if field.shape != decomp.global_shape:
        raise ValueError(
            f"field shape {field.shape} != decomposition {decomp.global_shape}")
    return [downsample_block(field[b.slices], b.lo, b.hi, stride)
            for b in decomp.blocks()]


class BlockLUT:
    """The in-transit look-up table: block bounds -> received block data.

    Built once when all down-sampled blocks arrive; routes any global
    sample position to the owning block and its nearest retained voxel.
    """

    def __init__(self, blocks: list[DownsampledBlock],
                 global_shape: tuple[int, int, int]) -> None:
        if not blocks:
            raise ValueError("LUT needs at least one block")
        strides = {b.stride for b in blocks}
        if len(strides) != 1:
            raise ValueError(f"blocks disagree on stride: {sorted(strides)}")
        self.stride = blocks[0].stride
        self.global_shape = tuple(global_shape)
        self.blocks = list(blocks)
        # Regular rectilinear layout: per-axis sorted unique cut positions.
        self._axis_starts = [
            np.array(sorted({b.lo[a] for b in blocks}), dtype=np.int64)
            for a in range(3)
        ]
        index_shape = tuple(len(s) for s in self._axis_starts)
        self._index = np.full(index_shape, -1, dtype=np.int64)
        for k, b in enumerate(blocks):
            cell = tuple(int(np.searchsorted(self._axis_starts[a], b.lo[a]))
                         for a in range(3))
            if self._index[cell] != -1:
                raise ValueError(f"two blocks share origin {b.lo}")
            self._index[cell] = k
        if np.any(self._index < 0):
            raise ValueError("blocks do not form a full rectilinear layout")

    @property
    def nbytes(self) -> int:
        """Size of the table itself (bounds + index), not the block data.
        "This small look-up table" — Table II charges only block payloads."""
        return sum(s.nbytes for s in self._axis_starts) + self._index.nbytes

    def block_of_cell(self, cell: np.ndarray) -> np.ndarray:
        """Owning block index for integer cells (..., 3)."""
        idx = [np.searchsorted(self._axis_starts[a], cell[..., a],
                               side="right") - 1 for a in range(3)]
        return self._index[tuple(idx)]

    def sampler(self):
        """Nearest-retained-voxel sampler over the full global domain."""
        shape = np.asarray(self.global_shape, dtype=np.float64)
        # Pack per-block data into one flat buffer for vectorised gathers.
        offsets = np.zeros(len(self.blocks) + 1, dtype=np.int64)
        for k, b in enumerate(self.blocks):
            offsets[k + 1] = offsets[k] + b.data.size
        flat = np.concatenate([b.data.ravel() for b in self.blocks])
        lo = np.array([b.lo for b in self.blocks], dtype=np.int64)
        dims = np.array([b.data.shape for b in self.blocks], dtype=np.int64)

        def sample(pos: np.ndarray) -> np.ndarray:
            p = np.clip(pos, 0.0, shape - 1.0)
            cell = np.rint(p).astype(np.int64)
            cell = np.minimum(cell, (shape - 1).astype(np.int64))
            which = self.block_of_cell(cell)
            local = (cell - lo[which]) // self.stride
            local = np.minimum(local, dims[which] - 1)
            d = dims[which]
            flat_idx = (offsets[which]
                        + (local[..., 0] * d[..., 1] + local[..., 1]) * d[..., 2]
                        + local[..., 2])
            return flat[flat_idx]

        return sample


def render_intransit(blocks: list[DownsampledBlock],
                     global_shape: tuple[int, int, int], camera: Camera,
                     tf: TransferFunction, step: float = 0.5,
                     background: float = 0.0) -> np.ndarray:
    """The serial in-transit renderer (one staging bucket).

    Marches the *same* rays as the in-situ mode over the full-resolution
    domain, sampling the down-sampled data through the LUT.
    """
    lut = BlockLUT(blocks, global_shape)
    origins, direction, t_len = camera.rays(global_shape)
    shape = np.asarray(global_shape, dtype=np.float64)

    def inside_domain(pos: np.ndarray) -> np.ndarray:
        return np.all((pos > -0.5) & (pos < shape - 0.5), axis=-1).astype(np.float64)

    rgb, alpha = march_rays(lut.sampler(), origins, direction, t_len, tf,
                            step, sample_mask=inside_domain)
    return rgb + (1.0 - alpha[..., None]) * background
