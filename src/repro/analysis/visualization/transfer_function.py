"""Piecewise-linear scalar -> RGBA transfer functions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TransferFunction:
    """Control points ``(value, r, g, b, a)`` interpolated linearly.

    Values outside the control range clamp to the end points. Opacity is
    per unit march distance; the ray marcher converts it per step.
    """

    points: tuple[tuple[float, float, float, float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("need at least two control points")
        vals = [p[0] for p in self.points]
        if vals != sorted(vals):
            raise ValueError("control points must be sorted by value")
        for p in self.points:
            if len(p) != 5:
                raise ValueError(f"control point {p} must be (value, r, g, b, a)")
            if not all(0.0 <= c <= 1.0 for c in p[1:]):
                raise ValueError(f"color/opacity of {p} must lie in [0, 1]")

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map scalars (any shape) to RGBA (shape + (4,))."""
        v = np.asarray(values, dtype=np.float64)
        xs = np.array([p[0] for p in self.points])
        out = np.empty(v.shape + (4,), dtype=np.float64)
        for c in range(4):
            ys = np.array([p[c + 1] for p in self.points])
            out[..., c] = np.interp(v, xs, ys)
        return out

    @classmethod
    def hot(cls, vmin: float, vmax: float, max_opacity: float = 0.4
            ) -> "TransferFunction":
        """Black-red-yellow-white ramp (the classic combustion palette)."""
        if vmax <= vmin:
            raise ValueError(f"vmax ({vmax}) must exceed vmin ({vmin})")
        span = vmax - vmin
        return cls((
            (vmin, 0.0, 0.0, 0.0, 0.0),
            (vmin + 0.33 * span, 0.8, 0.1, 0.0, 0.15 * max_opacity),
            (vmin + 0.66 * span, 1.0, 0.6, 0.0, 0.6 * max_opacity),
            (vmax, 1.0, 1.0, 0.9, max_opacity),
        ))

    @classmethod
    def grayscale(cls, vmin: float, vmax: float, max_opacity: float = 0.4
                  ) -> "TransferFunction":
        if vmax <= vmin:
            raise ValueError(f"vmax ({vmax}) must exceed vmin ({vmin})")
        return cls((
            (vmin, 0.0, 0.0, 0.0, 0.0),
            (vmax, 1.0, 1.0, 1.0, max_opacity),
        ))
