"""Parallel-projection camera and ray generation.

All renderers march the same rays: a parallel projection defined by
azimuth/elevation angles around the volume center, with the image plane
sized to cover the volume's bounding box (scaled by ``zoom`` — Fig. 2's
overview vs. zoom-in views differ only in this parameter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Camera:
    """Orthographic camera orbiting the volume center."""

    azimuth_deg: float = 30.0
    elevation_deg: float = 20.0
    image_shape: tuple[int, int] = (64, 64)
    zoom: float = 1.0
    #: Center of attention in grid-index space; None = volume center.
    center: tuple[float, float, float] | None = None

    def __post_init__(self) -> None:
        h, w = self.image_shape
        if h < 1 or w < 1:
            raise ValueError(f"image_shape must be positive, got {self.image_shape}")
        if self.zoom <= 0:
            raise ValueError(f"zoom must be positive, got {self.zoom}")

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(view_dir, right, up) orthonormal basis; view_dir points *into*
        the scene."""
        az = np.deg2rad(self.azimuth_deg)
        el = np.deg2rad(self.elevation_deg)
        view = -np.array([np.cos(el) * np.cos(az),
                          np.cos(el) * np.sin(az),
                          np.sin(el)])
        world_up = np.array([0.0, 0.0, 1.0])
        if abs(np.dot(view, world_up)) > 0.999:
            world_up = np.array([1.0, 0.0, 0.0])
        right = np.cross(view, world_up)
        right /= np.linalg.norm(right)
        up = np.cross(right, view)
        return view, right, up

    def rays(self, volume_shape: tuple[int, int, int]
             ) -> tuple[np.ndarray, np.ndarray, float]:
        """Ray origins, shared direction, and march length.

        Origins lie on a plane behind the volume; every ray marches
        ``t_len`` cells. Returns ``(origins (H, W, 3), direction (3,),
        t_len)``.
        """
        view, right, up = self.basis()
        shape = np.asarray(volume_shape, dtype=np.float64)
        center = (np.asarray(self.center, dtype=np.float64)
                  if self.center is not None else (shape - 1.0) / 2.0)
        radius = float(np.linalg.norm(shape)) / 2.0
        extent = radius / self.zoom

        h, w = self.image_shape
        ys = np.linspace(-extent, extent, h)
        xs = np.linspace(-extent, extent, w)
        # Pixel (0, 0) is the image's top-left: +up is toward row 0.
        offsets = (ys[::-1, None, None] * up[None, None, :]
                   + xs[None, :, None] * right[None, None, :])
        origins = center + offsets - view * radius
        return origins, view, 2.0 * radius
