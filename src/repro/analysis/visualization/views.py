"""Linked multi-view rendering sessions (paper §III).

"Multiple instances of each visualization mode can be dynamically created
in-situ and/or in-transit on demand, enabling scientists to explore
different aspects of simulation and analysis data in linked-views."

A :class:`ViewSession` manages named views — each with its own variable,
camera, mode (in-situ full-resolution or hybrid down-sampled), and
transfer function — created and removed on demand. Views are *linked*
through a shared feature selection: highlighting a segmentation feature
overlays its region in every view, connecting the topological analysis to
the rendered images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.topology.segmentation import Segmentation
from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.compositing import render_blocks_insitu
from repro.analysis.visualization.downsample import (
    downsample_decomposed,
    render_intransit,
)
from repro.analysis.visualization.transfer_function import TransferFunction
from repro.analysis.visualization.volume_render import march_rays, trilinear_sampler
from repro.vmpi.decomp import BlockDecomposition3D

_MODES = ("insitu", "hybrid")


@dataclass
class ViewSpec:
    """One view's configuration."""

    name: str
    variable: str
    camera: Camera = field(default_factory=lambda: Camera(image_shape=(32, 32)))
    mode: str = "insitu"
    downsample_stride: int = 2
    transfer_function: TransferFunction | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.downsample_stride < 1:
            raise ValueError("downsample_stride must be >= 1")


class ViewSession:
    """A set of linked views over one decomposed domain."""

    def __init__(self, decomp: BlockDecomposition3D,
                 views: list[ViewSpec] | None = None,
                 highlight_color: tuple[float, float, float] = (0.1, 0.9, 0.2),
                 highlight_opacity: float = 0.35) -> None:
        self.decomp = decomp
        self._views: dict[str, ViewSpec] = {}
        self.highlight_color = highlight_color
        self.highlight_opacity = highlight_opacity
        for v in views or []:
            self.add_view(v)

    # -- dynamic view management (the "on demand" part) -------------------------

    def add_view(self, view: ViewSpec) -> None:
        if view.name in self._views:
            raise ValueError(f"view {view.name!r} already exists")
        self._views[view.name] = view

    def remove_view(self, name: str) -> None:
        try:
            del self._views[name]
        except KeyError:
            raise KeyError(f"no view {name!r}; have {sorted(self._views)}") from None

    @property
    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- rendering ------------------------------------------------------------

    def _tf_for(self, view: ViewSpec, data: np.ndarray) -> TransferFunction:
        if view.transfer_function is not None:
            return view.transfer_function
        lo, hi = float(data.min()), float(data.max())
        return TransferFunction.hot(lo, max(hi, lo + 1e-9))

    def _render_one(self, view: ViewSpec, fields: dict[str, np.ndarray]
                    ) -> np.ndarray:
        try:
            data = fields[view.variable]
        except KeyError:
            raise KeyError(
                f"view {view.name!r} needs variable {view.variable!r}; "
                f"have {sorted(fields)}") from None
        tf = self._tf_for(view, data)
        if view.mode == "insitu":
            return render_blocks_insitu(data, self.decomp, view.camera, tf)
        blocks = downsample_decomposed(data, self.decomp,
                                       view.downsample_stride)
        return render_intransit(blocks, self.decomp.global_shape,
                                view.camera, tf)

    def _highlight_overlay(self, view: ViewSpec, segmentation: Segmentation,
                           label: int) -> tuple[np.ndarray, np.ndarray]:
        """Premultiplied (rgb, alpha) of the selected feature's region."""
        mask = segmentation.mask(label).astype(np.float64)
        r, g, b = self.highlight_color
        tf = TransferFunction((
            (0.0, r, g, b, 0.0),
            (0.5, r, g, b, 0.0),
            (1.0, r, g, b, self.highlight_opacity),
        ))
        origins, direction, t_len = view.camera.rays(self.decomp.global_shape)
        shape = np.asarray(self.decomp.global_shape, dtype=np.float64)

        def inside(pos: np.ndarray) -> np.ndarray:
            return np.all((pos > -0.5) & (pos < shape - 0.5), axis=-1
                          ).astype(np.float64)

        return march_rays(trilinear_sampler(mask), origins, direction, t_len,
                          tf, sample_mask=inside)

    def render_all(self, fields: dict[str, np.ndarray],
                   highlight: tuple[Segmentation, int] | None = None
                   ) -> dict[str, np.ndarray]:
        """Render every view; optionally overlay one linked feature.

        ``highlight = (segmentation, feature_label)`` draws the feature's
        region — the same region, in every view, whatever each view's
        variable or mode — the linked-selection interaction.
        """
        if not self._views:
            raise RuntimeError("session has no views")
        out: dict[str, np.ndarray] = {}
        for name in self.view_names:
            view = self._views[name]
            base = self._render_one(view, fields)
            if highlight is not None:
                seg, label = highlight
                if seg.labels.shape != self.decomp.global_shape:
                    raise ValueError(
                        f"segmentation shape {seg.labels.shape} != domain "
                        f"{self.decomp.global_shape}")
                o_rgb, o_a = self._highlight_overlay(view, seg, label)
                base = o_rgb + (1.0 - o_a[..., None]) * base
            out[name] = base
        return out
