"""The fully in-situ parallel renderer: per-block ray casting + compositing.

Each rank ray-casts only the samples that fall inside its own brick (using
one ghost layer on the high faces so trilinear interpolation at internal
block boundaries is exact), producing a partial (premultiplied RGB, alpha)
image. Partials are alpha-composited front-to-back in *block visibility
order* — for a rectilinear decomposition under parallel projection, any
linear extension of the per-axis ordering induced by the view direction is
a correct visibility order; we use the signed sum of block grid
coordinates.

Tests assert the composited result matches the serial reference renderer
to floating-point-reassociation tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.transfer_function import TransferFunction
from repro.analysis.visualization.volume_render import march_rays
from repro.vmpi.decomp import Block3D, BlockDecomposition3D


def block_with_hi_ghost(field: np.ndarray, block: Block3D) -> np.ndarray:
    """The rank's brick plus one ghost layer on each high face (clipped at
    the domain edge) — exactly what trilinear sampling of owned cells needs."""
    n = field.shape
    sl = tuple(slice(lo, min(hi + 1, n[a])) for a, (lo, hi)
               in enumerate(zip(block.lo, block.hi)))
    return np.ascontiguousarray(field[sl])


def _block_sampler(block_data: np.ndarray, lo: tuple[int, int, int],
                   hi: tuple[int, int, int], global_shape: tuple[int, int, int]):
    """Sampler + ownership mask replicating the global trilinear arithmetic.

    The base cell index ``i0`` is computed exactly as the serial sampler
    does; the rank owns a sample iff ``i0`` lies in its brick. Owned
    samples then interpolate from the ghosted block and are bit-identical
    to the serial renderer's values.
    """
    shape = np.asarray(global_shape, dtype=np.float64)
    lo_arr = np.asarray(lo, dtype=np.int64)
    hi_arr = np.asarray(hi, dtype=np.int64)

    def sample(pos: np.ndarray) -> np.ndarray:
        p = np.clip(pos, 0.0, shape - 1.0)
        i0 = np.minimum(p.astype(np.int64), (shape - 2).astype(np.int64))
        i0 = np.maximum(i0, 0)
        frac = p - i0
        local = np.clip(i0 - lo_arr, 0,
                        np.asarray(block_data.shape) - 2)
        x0, y0, z0 = local[..., 0], local[..., 1], local[..., 2]
        fx, fy, fz = frac[..., 0], frac[..., 1], frac[..., 2]
        c00 = block_data[x0, y0, z0] * (1 - fx) + block_data[x0 + 1, y0, z0] * fx
        c10 = block_data[x0, y0 + 1, z0] * (1 - fx) + block_data[x0 + 1, y0 + 1, z0] * fx
        c01 = block_data[x0, y0, z0 + 1] * (1 - fx) + block_data[x0 + 1, y0, z0 + 1] * fx
        c11 = block_data[x0, y0 + 1, z0 + 1] * (1 - fx) + block_data[x0 + 1, y0 + 1, z0 + 1] * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        return c0 * (1 - fz) + c1 * fz

    def owned_mask(pos: np.ndarray) -> np.ndarray:
        inside = np.all((pos > -0.5) & (pos < shape - 0.5), axis=-1)
        p = np.clip(pos, 0.0, shape - 1.0)
        i0 = np.minimum(p.astype(np.int64), (shape - 2).astype(np.int64))
        i0 = np.maximum(i0, 0)
        owned = np.all((i0 >= lo_arr) & (i0 < hi_arr), axis=-1)
        return (inside & owned).astype(np.float64)

    return sample, owned_mask


def visibility_order(decomp: BlockDecomposition3D, direction: np.ndarray
                     ) -> list[int]:
    """Front-to-back rank order: signed sum of block grid coordinates.

    Monotone with respect to the per-axis partial order induced by the
    view direction, hence a valid visibility order for rectilinear bricks
    under parallel projection.
    """
    keys = []
    for b in decomp.blocks():
        key = sum(np.sign(direction[a]) * b.coords[a] for a in range(3))
        keys.append((key, b.rank))
    keys.sort()
    return [rank for _key, rank in keys]


def render_block_partial(field: np.ndarray, block: Block3D,
                         decomp: BlockDecomposition3D, camera: Camera,
                         tf: TransferFunction, step: float = 0.5
                         ) -> tuple[np.ndarray, np.ndarray]:
    """One rank's in-situ stage: partial (premultiplied RGB, alpha) image."""
    data = block_with_hi_ghost(field, block)
    sampler, owned = _block_sampler(data, block.lo, block.hi,
                                    decomp.global_shape)
    origins, direction, t_len = camera.rays(decomp.global_shape)
    return march_rays(sampler, origins, direction, t_len, tf, step,
                      sample_mask=owned)


def composite_partials(partials: list[tuple[np.ndarray, np.ndarray]],
                       order: list[int], background: float = 0.0
                       ) -> np.ndarray:
    """Front-to-back 'over' compositing of per-rank partial images."""
    if not partials:
        raise ValueError("no partial images to composite")
    h, w, _ = partials[0][0].shape
    rgb = np.zeros((h, w, 3))
    alpha = np.zeros((h, w))
    for rank in order:
        prgb, palpha = partials[rank]
        weight = (1.0 - alpha)
        rgb += weight[..., None] * prgb
        alpha += weight * palpha
    return rgb + (1.0 - alpha[..., None]) * background


def render_blocks_insitu(field: np.ndarray, decomp: BlockDecomposition3D,
                         camera: Camera, tf: TransferFunction,
                         step: float = 0.5, background: float = 0.0
                         ) -> np.ndarray:
    """The full in-situ mode: every rank renders, then composite."""
    field = np.asarray(field, dtype=np.float64)
    if field.shape != decomp.global_shape:
        raise ValueError(
            f"field shape {field.shape} != decomposition {decomp.global_shape}")
    partials = [render_block_partial(field, b, decomp, camera, tf, step)
                for b in decomp.blocks()]
    _, direction, _ = camera.rays(decomp.global_shape)
    order = visibility_order(decomp, direction)
    return composite_partials(partials, order, background)
