"""ISABELA-style in-situ compression with query support (related work [6]).

The paper's related-work survey includes ISABELA-QA: "statistical
compression and queries ... directly integrated into simulation routines,
enabling them to operate on in-memory simulation data." The method:
partition the field into fixed-size windows, *sort* each window (sorted
data is monotone, hence extremely smooth), fit a low-order B-spline to the
sorted curve, and store the spline knots plus the sort permutation. The
spline coefficients compress the values; range queries ("which windows can
contain values in [a, b]?") run on the compressed representation without
reconstruction.

This implementation keeps the full permutation (stored as the index bytes
ISABELA entropy-codes); the *value* payload still shrinks by the window /
knots ratio, and the error-bound and query semantics are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import splev, splrep


@dataclass
class CompressedWindow:
    """One window: spline knots/coefficients + the sort permutation."""

    tck: tuple
    permutation: np.ndarray     # int32 positions of sorted values
    minimum: float
    maximum: float
    n: int


@dataclass
class CompressedField:
    """A compressed scalar field (window partition of the flat array)."""

    windows: list[CompressedWindow]
    shape: tuple[int, ...]
    window_size: int
    n_coefficients: int

    @property
    def value_bytes(self) -> int:
        """Bytes of the value model (knots + coefficients)."""
        total = 0
        for w in self.windows:
            t, c, _k = w.tck
            total += (len(t) + len(c)) * 8 + 16  # + min/max
        return total

    @property
    def index_bytes(self) -> int:
        """Bytes of the permutation indices (ISABELA entropy-codes these;
        we count them raw — a conservative ratio)."""
        return sum(w.permutation.nbytes for w in self.windows)

    @property
    def nbytes(self) -> int:
        return self.value_bytes + self.index_bytes

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = int(np.prod(self.shape))
        return n * itemsize / self.nbytes

    def value_compression_ratio(self, itemsize: int = 8) -> float:
        """Ratio counting only value payload (the ISABELA headline number,
        with indices assumed entropy-coded separately)."""
        n = int(np.prod(self.shape))
        return n * itemsize / self.value_bytes


def compress(field: np.ndarray, window_size: int = 256,
             n_coefficients: int = 10) -> CompressedField:
    """Compress a scalar field window-by-window.

    ``n_coefficients`` controls the spline richness (ISABELA's knob): more
    coefficients, lower error, less compression.
    """
    if window_size < 8:
        raise ValueError(f"window_size must be >= 8, got {window_size}")
    if not 4 <= n_coefficients <= window_size:
        raise ValueError(
            f"n_coefficients must be in [4, window_size], got {n_coefficients}")
    flat = np.asarray(field, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ValueError("cannot compress an empty field")
    windows: list[CompressedWindow] = []
    x_full = None
    for start in range(0, flat.size, window_size):
        chunk = flat[start:start + window_size]
        order = np.argsort(chunk, kind="stable").astype(np.int32)
        sorted_vals = chunk[order]
        n = sorted_vals.size
        if x_full is None or x_full.size != n:
            x_full = np.arange(n, dtype=np.float64)
        # Interior knots evenly spaced; cubic unless the window is tiny.
        k = 3 if n > 8 else 1
        n_interior = max(0, min(n_coefficients - (k + 1), n - 2 * (k + 1)))
        if n_interior > 0:
            knots = np.linspace(0, n - 1, n_interior + 2)[1:-1]
        else:
            knots = None
        tck = splrep(x_full, sorted_vals, k=k, t=knots, s=0 if knots is None and n <= k + 1 else None)
        windows.append(CompressedWindow(
            tck=tck, permutation=order,
            minimum=float(sorted_vals[0]), maximum=float(sorted_vals[-1]),
            n=n))
    return CompressedField(windows=windows, shape=tuple(np.asarray(field).shape),
                           window_size=window_size,
                           n_coefficients=n_coefficients)


def decompress(compressed: CompressedField) -> np.ndarray:
    """Reconstruct the field (values approximate, positions exact)."""
    out = np.empty(int(np.prod(compressed.shape)), dtype=np.float64)
    pos = 0
    for w in compressed.windows:
        x = np.arange(w.n, dtype=np.float64)
        sorted_vals = np.asarray(splev(x, w.tck), dtype=np.float64)
        # Clamp to the stored extrema (the spline may overshoot slightly).
        np.clip(sorted_vals, w.minimum, w.maximum, out=sorted_vals)
        chunk = np.empty(w.n)
        chunk[w.permutation] = sorted_vals
        out[pos:pos + w.n] = chunk
        pos += w.n
    return out.reshape(compressed.shape)


def relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Max pointwise error relative to the field's value range."""
    original = np.asarray(original, dtype=np.float64)
    span = float(original.max() - original.min())
    if span == 0:
        return 0.0
    return float(np.max(np.abs(original - reconstructed)) / span)


def query_range(compressed: CompressedField, lo: float, hi: float
                ) -> np.ndarray:
    """Boolean mask of *windows* that may contain values in ``[lo, hi]``.

    Runs entirely on compressed metadata (window min/max) — the
    query-driven-analytics pattern of ISABELA-QA: windows ruled out are
    never reconstructed.
    """
    if hi < lo:
        raise ValueError(f"empty query range [{lo}, {hi}]")
    return np.array([not (w.maximum < lo or w.minimum > hi)
                     for w in compressed.windows])


def query_values(compressed: CompressedField, lo: float, hi: float
                 ) -> np.ndarray:
    """Flat indices whose reconstructed value falls in ``[lo, hi]``.

    Decompresses only the candidate windows selected by
    :func:`query_range`.
    """
    mask = query_range(compressed, lo, hi)
    hits: list[np.ndarray] = []
    pos = 0
    for selected, w in zip(mask, compressed.windows):
        if selected:
            x = np.arange(w.n, dtype=np.float64)
            sorted_vals = np.clip(np.asarray(splev(x, w.tck)), w.minimum,
                                  w.maximum)
            chunk = np.empty(w.n)
            chunk[w.permutation] = sorted_vals
            local = np.flatnonzero((chunk >= lo) & (chunk <= hi))
            hits.append(local + pos)
        pos += w.n
    if not hits:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(hits)
