"""Merge-tree topology: the paper's hardest, non-data-parallel analysis.

The hybrid formulation of §III:

* **in-situ** (:mod:`~repro.analysis.topology.local_tree`): each rank
  computes the merge tree of its block with a low-overhead sort +
  union-find algorithm [32], then reduces it to a *boundary tree*
  retaining all critical vertices plus every boundary vertex — the
  "topological ghost cells" needed so neighbouring subtrees glue
  correctly [47];
* **in-transit** (:mod:`~repro.analysis.topology.stream_merge`): a single
  serial process aggregates subtrees with a streaming algorithm [43] that
  accepts vertices and edges in any order, maintains the merge tree of
  everything seen so far, and *finalizes* vertices once their last
  incident edge arrives to keep the memory footprint low.

Supporting tools: persistence simplification
(:mod:`~repro.analysis.topology.simplify`), threshold segmentation
(:mod:`~repro.analysis.topology.segmentation`, Fig. 3), and overlap-based
feature tracking (:mod:`~repro.analysis.topology.tracking`, Fig. 1).

Convention: *maximum-based* merge trees (split trees): the isovalue sweeps
from +inf downward, leaves are local maxima, and arcs merge at saddles.
Ties are broken by vertex id (simulation of simplicity), so every tree is
deterministic.
"""

from repro.analysis.topology.merge_tree import (
    DisjointSet,
    MergeTree,
    compute_merge_tree,
    sweep_order,
)
from repro.analysis.topology.local_tree import BoundaryTree, compute_boundary_tree
from repro.analysis.topology.stream_merge import StreamingGlue
from repro.analysis.topology.distributed import (
    block_boundary_mask,
    cross_block_edges,
    distributed_merge_tree,
)
from repro.analysis.topology.simplify import persistence_pairs, simplify
from repro.analysis.topology.segmentation import segment_superlevel
from repro.analysis.topology.tracking import FeatureTrack, overlap_matrix, track_features
from repro.analysis.topology.branches import (
    Branch,
    branch_decomposition,
    diagram_distance,
    persistence_diagram,
)
from repro.analysis.topology.events import Event, EventKind, detect_events, event_counts

__all__ = [
    "DisjointSet",
    "MergeTree",
    "compute_merge_tree",
    "sweep_order",
    "BoundaryTree",
    "compute_boundary_tree",
    "StreamingGlue",
    "block_boundary_mask",
    "cross_block_edges",
    "distributed_merge_tree",
    "persistence_pairs",
    "simplify",
    "segment_superlevel",
    "FeatureTrack",
    "overlap_matrix",
    "track_features",
    "Branch",
    "branch_decomposition",
    "persistence_diagram",
    "diagram_distance",
    "Event",
    "EventKind",
    "detect_events",
    "event_counts",
]
