"""Merge-tree serialisation via the BP container.

§III: finalized tree elements are "written to disk ... removing them from
memory". This module provides the on-disk form: a tree is three parallel
arrays (node ids, values, parent ids with -1 for roots), written through
the same self-describing container the checkpoints use, so trees from a
run can be archived next to its data and reloaded for post-hoc comparison
(e.g. persistence-diagram distances across a campaign).
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.topology.merge_tree import MergeTree
from repro.io.bp import BPFile


def save_tree(tree: MergeTree, path: str | os.PathLike,
              attrs: dict | None = None) -> int:
    """Write a tree to one BP file; returns bytes on disk."""
    ids = np.array(sorted(tree.value), dtype=np.int64)
    values = np.array([tree.value[int(i)] for i in ids], dtype=np.float64)
    parents = np.array([-1 if tree.parent[int(i)] is None
                        else int(tree.parent[int(i)]) for i in ids],
                       dtype=np.int64)
    with BPFile.create(path, attrs={"kind": "merge-tree",
                                    "n_nodes": int(ids.size),
                                    **(attrs or {})}) as bp:
        bp.write("node_ids", ids)
        bp.write("values", values)
        bp.write("parents", parents)
    return os.stat(path).st_size


def load_tree(path: str | os.PathLike) -> MergeTree:
    """Reload a tree written by :func:`save_tree`."""
    bp = BPFile.open(path)
    if bp.attrs.get("kind") != "merge-tree":
        raise ValueError(f"{path}: not a merge-tree file "
                         f"(kind={bp.attrs.get('kind')!r})")
    ids = bp.read("node_ids")
    values = bp.read("values")
    parents = bp.read("parents")
    if not (ids.size == values.size == parents.size):
        raise ValueError(f"{path}: inconsistent array lengths")
    tree = MergeTree()
    for i, v in zip(ids, values):
        tree.add_node(int(i), float(v))
    for i, p in zip(ids, parents):
        if p >= 0:
            tree.set_parent(int(i), int(p))
    return tree


def tree_nbytes(tree: MergeTree) -> int:
    """In-memory wire size of the serialised form (24 B per node)."""
    return 24 * len(tree)
