"""Distributed merge-tree orchestration: blocks -> boundary trees -> glue.

This module supplies the geometry plumbing between the in-situ and
in-transit stages:

* :func:`block_boundary_mask` — which vertices of a block lie on faces
  shared with neighbouring blocks (the retained "topological ghost cells");
* :func:`cross_block_edges` — the grid adjacencies straddling block
  boundaries, which the glue stage adds to stitch subtrees together;
* :func:`distributed_merge_tree` — the full pipeline on an in-memory
  global field, used by tests, examples, and the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.topology.local_tree import BoundaryTree, compute_boundary_tree
from repro.analysis.topology.merge_tree import MergeTree
from repro.analysis.topology.stream_merge import StreamingGlue
from repro.backend import kernel
from repro.vmpi.decomp import Block3D, BlockDecomposition3D


def global_id_array(shape: tuple[int, int, int]) -> np.ndarray:
    """Global vertex ids: C-order linear indices of the global grid."""
    return np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)


def block_boundary_mask(block: Block3D, global_shape: tuple[int, int, int]
                        ) -> np.ndarray:
    """True on faces the block shares with a neighbouring block.

    Faces on the *domain* boundary are not marked (no neighbour to glue
    to) — only inter-block faces carry ghost-equivalent vertices.
    """
    mask = np.zeros(block.shape, dtype=bool)
    for axis in range(3):
        if block.lo[axis] > 0:
            sl = [slice(None)] * 3
            sl[axis] = slice(0, 1)
            mask[tuple(sl)] = True
        if block.hi[axis] < global_shape[axis]:
            sl = [slice(None)] * 3
            sl[axis] = slice(block.shape[axis] - 1, block.shape[axis])
            mask[tuple(sl)] = True
    return mask


def cross_block_edges(decomp: BlockDecomposition3D) -> list[tuple[int, int]]:
    """Grid adjacencies (6-connectivity) whose endpoints lie in different
    blocks, as global-id pairs. Each edge is emitted once."""
    ids = global_id_array(decomp.global_shape)
    edges: list[tuple[int, int]] = []
    for axis in range(3):
        # Internal block interfaces along this axis occur at the block
        # start coordinates (excluding the domain edge at 0).
        starts = sorted({b.lo[axis] for b in decomp.blocks()} - {0})
        for cut in starts:
            lo_sl = [slice(None)] * 3
            hi_sl = [slice(None)] * 3
            lo_sl[axis] = slice(cut - 1, cut)
            hi_sl[axis] = slice(cut, cut + 1)
            a = ids[tuple(lo_sl)].ravel()
            b = ids[tuple(hi_sl)].ravel()
            edges.extend(zip(a.tolist(), b.tolist()))
    return edges


def compute_block_boundary_trees(global_field: np.ndarray,
                                 decomp: BlockDecomposition3D
                                 ) -> list[BoundaryTree]:
    """The in-situ stage for every rank (functional layer)."""
    field = np.asarray(global_field, dtype=np.float64)
    if field.shape != decomp.global_shape:
        raise ValueError(
            f"field shape {field.shape} != decomposition {decomp.global_shape}")
    ids = global_id_array(decomp.global_shape)
    out = []
    for block in decomp.blocks():
        out.append(compute_boundary_tree(
            field[block.slices], ids[block.slices],
            block_boundary_mask(block, decomp.global_shape)))
    return out


def _stream_glue(boundary_trees: list[BoundaryTree],
                 cross_edges: list[tuple[int, int]],
                 glue: StreamingGlue) -> MergeTree:
    """Stream all subtree elements, then the cross edges, into ``glue``."""
    # Pre-count incident edges so the glue can track finalization.
    incident: dict[int, int] = {}
    for bt in boundary_trees:
        for hi, lo in bt.edges:
            incident[hi] = incident.get(hi, 0) + 1
            incident[lo] = incident.get(lo, 0) + 1
    for u, v in cross_edges:
        incident[u] = incident.get(u, 0) + 1
        incident[v] = incident.get(v, 0) + 1

    for bt in boundary_trees:
        for vid, val in bt.nodes.items():
            glue.add_vertex(vid, val, n_incident_edges=incident.get(vid, 0))
        for hi, lo in bt.edges:
            glue.add_edge(hi, lo)
    for u, v in cross_edges:
        glue.add_edge(u, v)
    return glue.finalize()


@kernel("topology.glue_batch")
def _glue_batch(boundary_trees: list[BoundaryTree],
                cross_edges: list[tuple[int, int]]) -> MergeTree:
    """Glue kernel used when the caller does not need streaming-side
    accounting (finalization counts, live-vertex high-water mark).

    The reference body streams through a fresh :class:`StreamingGlue`;
    the numpy backend builds the same augmented tree with one batch
    union-find sweep over the combined vertex/edge set — the augmented
    merge tree is unique given the (value, id) total order, so the
    outputs are identical node-for-node and arc-for-arc.
    """
    return _stream_glue(boundary_trees, cross_edges, StreamingGlue())


def glue_boundary_trees(boundary_trees: list[BoundaryTree],
                        cross_edges: list[tuple[int, int]],
                        glue: StreamingGlue | None = None) -> MergeTree:
    """The in-transit stage: stream all subtree elements, then the cross
    edges, into a single glue process and return the global tree.

    Passing an explicit ``glue`` pins the streaming implementation (its
    finalization/live-vertex accounting is part of the result); with the
    default ``None`` the work dispatches through the ``topology.glue_batch``
    backend kernel.
    """
    if glue is not None:
        return _stream_glue(boundary_trees, cross_edges, glue)
    return _glue_batch(boundary_trees, cross_edges)


def distributed_merge_tree(global_field: np.ndarray,
                           decomp: BlockDecomposition3D
                           ) -> tuple[MergeTree, list[BoundaryTree]]:
    """Full hybrid pipeline on an in-memory field.

    Returns the glued global tree (augmented over retained vertices; call
    ``.reduced()`` for critical structure) and the per-rank boundary trees
    (whose ``nbytes`` are the "data movement size" of Table II).
    """
    boundary_trees = compute_block_boundary_trees(global_field, decomp)
    tree = glue_boundary_trees(boundary_trees, cross_block_edges(decomp))
    return tree, boundary_trees
