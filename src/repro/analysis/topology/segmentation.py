"""Threshold-based segmentation from a merge tree (Fig. 3).

The merge tree "encodes an ensemble of threshold-based segmentations":
for any threshold, the superlevel set decomposes into connected
components, each represented by a tree node and labeled by its
representative maximum. With persistence simplification, nearby
low-persistence maxima are absorbed so a feature is a *branch* of the
simplified tree (the regions around local maxima that describe burning
regions, extinction events, or eddies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.topology.merge_tree import MergeTree, compute_merge_tree
from repro.analysis.topology.simplify import representative_maxima, surviving_maximum_map


@dataclass
class Feature:
    """One segmented feature: a labeled superlevel region."""

    label: int            # the representative maximum's global vertex id
    max_value: float
    n_cells: int
    centroid: tuple[float, float, float]


@dataclass
class Segmentation:
    """Labels array (-1 = below threshold) + per-feature summaries."""

    labels: np.ndarray
    features: dict[int, Feature]
    threshold: float

    @property
    def n_features(self) -> int:
        return len(self.features)

    def mask(self, label: int) -> np.ndarray:
        if label not in self.features:
            raise KeyError(f"no feature {label}; have {sorted(self.features)}")
        return self.labels == label


def segment_superlevel(field: np.ndarray, threshold: float,
                       min_persistence: float = 0.0,
                       tree: MergeTree | None = None,
                       vertex_arc: np.ndarray | None = None) -> Segmentation:
    """Segment ``{f >= threshold}`` into merge-tree features.

    Pass a precomputed ``(tree, vertex_arc)`` from
    :func:`~repro.analysis.topology.merge_tree.compute_merge_tree` to
    reuse in-situ results; otherwise they are computed here.
    """
    field = np.asarray(field, dtype=np.float64)
    if tree is None or vertex_arc is None:
        tree, vertex_arc = compute_merge_tree(field)
    if vertex_arc.shape != field.shape:
        raise ValueError("vertex_arc shape must match field shape")

    rep = representative_maxima(tree)
    survivor = (surviving_maximum_map(tree, min_persistence)
                if min_persistence > 0 else {})

    flat_field = field.ravel()
    flat_arc = vertex_arc.ravel()
    labels_flat = np.full(flat_field.size, -1, dtype=np.int64)

    # Memoised walk: component representative node at `threshold` for each
    # distinct arc-upper node.
    deepest_memo: dict[int, int] = {}

    def deepest(node: int) -> int:
        path = []
        cur = node
        while cur not in deepest_memo:
            parent = tree.parent[cur]
            if parent is None or tree.value[parent] < threshold:
                deepest_memo[cur] = cur
                break
            path.append(cur)
            cur = parent
        result = deepest_memo[cur]
        for n in path:
            deepest_memo[n] = result
        return result

    above = np.flatnonzero(flat_field >= threshold)
    for v in above:
        node = int(flat_arc[v])
        comp = deepest(node)
        label = rep[comp]
        label = survivor.get(label, label)
        labels_flat[v] = label

    labels = labels_flat.reshape(field.shape)
    features: dict[int, Feature] = {}
    for label in np.unique(labels_flat[labels_flat >= 0]):
        label = int(label)
        cells = np.argwhere(labels == label)
        features[label] = Feature(
            label=label,
            max_value=float(tree.value[label]),
            n_cells=int(cells.shape[0]),
            centroid=tuple(float(c) for c in cells.mean(axis=0)),
        )
    return Segmentation(labels=labels, features=features, threshold=threshold)
