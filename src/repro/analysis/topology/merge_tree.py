"""Merge-tree data structure and the batch sort + union-find algorithm [32].

A (maximum-based) merge tree records how superlevel-set components appear
at local maxima and merge at saddles as the isovalue sweeps downward.
Nodes are *vertices of the input* (identified by integer ids); arcs point
from each node to its parent at lower function value.

The total order used everywhere is ``(value, id)`` descending — ties are
broken by id ("simulation of simplicity"), making results deterministic
and consistent across blocks of a distributed computation.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.backend import kernel


class DisjointSet:
    """Array-based union-find with path halving and union by explicit root."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self._parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union_into(self, child_root: int, parent_root: int) -> None:
        """Attach ``child_root``'s set under ``parent_root`` (caller passes roots)."""
        self._parent[child_root] = parent_root


def _higher(value_a: float, id_a: int, value_b: float, id_b: int) -> bool:
    """True if (value_a, id_a) is greater in the sweep's total order."""
    return (value_a, id_a) > (value_b, id_b)


def sweep_order(values: np.ndarray) -> np.ndarray:
    """Indices of ``values`` sorted by (value, index) descending."""
    v = np.asarray(values).ravel()
    idx = np.arange(v.size)
    return np.lexsort((idx, v))[::-1]


class MergeTree:
    """Nodes with values and parent pointers toward lower function values.

    Supports trees that contain *regular* chain nodes (exactly one child)
    — these appear in boundary trees and glued trees — plus
    :meth:`reduced` to contract them away for critical-structure
    comparisons.
    """

    def __init__(self) -> None:
        self.value: dict[int, float] = {}
        self.parent: dict[int, int | None] = {}
        self._children: dict[int, list[int]] = {}

    # -- construction -----------------------------------------------------------

    def add_node(self, node_id: int, value: float) -> None:
        if node_id in self.value:
            raise ValueError(f"node {node_id} already in tree")
        self.value[node_id] = float(value)
        self.parent[node_id] = None
        self._children[node_id] = []

    def set_parent(self, child: int, parent: int) -> None:
        if child not in self.value or parent not in self.value:
            raise KeyError(f"both {child} and {parent} must be nodes")
        if child == parent:
            raise ValueError(f"node {child} cannot parent itself")
        if not _higher(self.value[child], child, self.value[parent], parent):
            raise ValueError(
                f"parent {parent} (f={self.value[parent]}) must be lower than "
                f"child {child} (f={self.value[child]}) in the sweep order")
        old = self.parent[child]
        if old is not None:
            self._children[old].remove(child)
        self.parent[child] = parent
        self._children[parent].append(child)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.value)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.value

    def children(self, node_id: int) -> list[int]:
        return list(self._children[node_id])

    def roots(self) -> list[int]:
        """Nodes without parents (one per connected component)."""
        return sorted(n for n, p in self.parent.items() if p is None)

    def leaves(self) -> list[int]:
        """Local maxima: nodes without children."""
        return sorted(n for n, c in self._children.items() if not c)

    def saddles(self) -> list[int]:
        """Merge nodes: nodes with two or more children."""
        return sorted(n for n, c in self._children.items() if len(c) >= 2)

    def arcs(self) -> list[tuple[int, int]]:
        """All (child, parent) arcs, sorted for determinism."""
        return sorted((c, p) for c, p in self.parent.items() if p is not None)

    def is_regular(self, node_id: int) -> bool:
        """A chain node: exactly one child and a parent."""
        return (len(self._children[node_id]) == 1
                and self.parent[node_id] is not None)

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * parent values strictly lower in the sweep order;
        * no cycles (every walk to a root terminates).
        """
        for child, parent in self.parent.items():
            if parent is None:
                continue
            if not _higher(self.value[child], child, self.value[parent], parent):
                raise AssertionError(f"arc {child}->{parent} not descending")
        for start in self.value:
            seen = set()
            node: int | None = start
            while node is not None:
                if node in seen:
                    raise AssertionError(f"cycle through node {node}")
                seen.add(node)
                node = self.parent[node]

    # -- transforms ----------------------------------------------------------------

    def reduced(self) -> "MergeTree":
        """Copy with regular chain nodes contracted and dangling root
        chains dropped.

        The result contains exactly the critical structure: leaves and
        saddles (each component's root becomes its lowest saddle, or its
        single maximum). Comparing two reduced trees compares merge
        topology irrespective of retained regular vertices — an augmented
        tree (every vertex a node) and a critical-only tree of the same
        function reduce identically.
        """
        keep = {n for n in self.value if not self.is_regular(n)}
        out = MergeTree()
        for n in keep:
            out.add_node(n, self.value[n])
        for n in keep:
            p = self.parent[n]
            while p is not None and p not in keep:
                p = self.parent[p]
            if p is not None:
                out.set_parent(n, p)
        # Drop root chains: a root with exactly one child is a regular
        # vertex below the component's lowest saddle.
        changed = True
        while changed:
            changed = False
            for root in out.roots():
                kids = out._children[root]
                if len(kids) == 1:
                    child = kids[0]
                    out._children[root] = []
                    out.parent[child] = None
                    del out.value[root]
                    del out.parent[root]
                    del out._children[root]
                    changed = True
        return out

    def signature(self) -> tuple:
        """Hashable summary of critical structure (for equality tests)."""
        red = self.reduced()
        return (tuple(sorted(red.value.items())), tuple(red.arcs()))

    def deepest_at_or_above(self, node_id: int, threshold: float) -> int:
        """Walk down from ``node_id`` to the lowest node with value >= threshold.

        This is the representative of ``node_id``'s superlevel component at
        ``threshold`` (used by segmentation).
        """
        node = node_id
        if self.value[node] < threshold:
            raise ValueError(
                f"node {node_id} (f={self.value[node]}) is below {threshold}")
        while True:
            p = self.parent[node]
            if p is None or self.value[p] < threshold:
                return node
            node = p


def grid_neighbor_offsets(shape: tuple[int, ...]) -> list[int]:
    """Linear-index offsets of the 2*ndim face neighbours of a C-order grid."""
    strides = []
    s = 1
    for extent in reversed(shape):
        strides.append(s)
        s *= extent
    strides.reverse()
    out = []
    for st in strides:
        out.extend((st, -st))
    return out


def _iter_grid_neighbors(flat_index: int, shape: tuple[int, ...],
                         strides: list[int]) -> Iterable[int]:
    """Face neighbours with bounds checks (non-periodic)."""
    rem = flat_index
    coords = []
    for st in strides:
        coords.append(rem // st)
        rem %= st
    for axis, st in enumerate(strides):
        if coords[axis] > 0:
            yield flat_index - st
        if coords[axis] < shape[axis] - 1:
            yield flat_index + st


@kernel("topology.merge_tree")
def compute_merge_tree(field: np.ndarray,
                       id_map: np.ndarray | None = None
                       ) -> tuple[MergeTree, np.ndarray]:
    """Batch merge tree of a scalar grid (any dimension, face connectivity).

    Returns ``(tree, vertex_arc)`` where ``vertex_arc[i]`` is the tree node
    whose arc contains flat vertex ``i`` — the per-vertex handle used by
    segmentation. ``id_map`` (same shape as ``field``) supplies global
    vertex ids; by default flat local indices are used.

    This is the paper's *in-situ* algorithm: one sort of the block plus a
    near-linear union-find sweep. Backend seam: the numpy backend
    precomputes the neighbour table and sweep ranks vectorially and runs
    the identical union-find sweep over plain lists — same visit order,
    same neighbour order, bit-identical tree and ``vertex_arc``.
    """
    values = np.asarray(field, dtype=np.float64).ravel()
    n = values.size
    if n == 0:
        raise ValueError("cannot compute the merge tree of an empty field")
    shape = tuple(np.asarray(field).shape)
    if id_map is not None:
        ids = np.asarray(id_map).ravel()
        if ids.size != n:
            raise ValueError(f"id_map size {ids.size} != field size {n}")
        if np.unique(ids).size != n:
            raise ValueError("id_map must assign distinct ids")
    else:
        ids = np.arange(n, dtype=np.int64)

    strides = []
    s = 1
    for extent in reversed(shape):
        strides.append(s)
        s *= extent
    strides.reverse()

    # Tie-break on the *global* id so block-local sweeps agree with the
    # global sweep even on plateau (equal-value) data.
    order = np.lexsort((ids, values))[::-1]
    processed = np.zeros(n, dtype=bool)
    uf = DisjointSet(n)
    # Per-component current tree node (keyed by union-find root).
    comp_node = np.full(n, -1, dtype=np.int64)
    vertex_arc_local = np.full(n, -1, dtype=np.int64)
    tree = MergeTree()

    for v in order:
        v = int(v)
        neighbor_roots: list[int] = []
        for u in _iter_grid_neighbors(v, shape, strides):
            if processed[u]:
                r = uf.find(u)
                if r not in neighbor_roots:
                    neighbor_roots.append(r)
        processed[v] = True
        if not neighbor_roots:
            # Local maximum: new leaf, new component.
            tree.add_node(int(ids[v]), values[v])
            comp_node[v] = v
            vertex_arc_local[v] = v
        elif len(neighbor_roots) == 1:
            # Regular vertex: joins the single component.
            r = neighbor_roots[0]
            uf.union_into(v, r)
            rr = uf.find(v)
            comp_node[rr] = comp_node[r]
            vertex_arc_local[v] = comp_node[r]
        else:
            # Saddle: new node, children = merging components' nodes.
            tree.add_node(int(ids[v]), values[v])
            for r in neighbor_roots:
                tree.set_parent(int(ids[comp_node[r]]), int(ids[v]))
                uf.union_into(r, v)
            rr = uf.find(v)
            comp_node[rr] = v
            vertex_arc_local[v] = v

    vertex_arc = ids[vertex_arc_local].reshape(shape)
    return tree, vertex_arc
