"""The in-transit stage: streaming merge-tree aggregation [43].

A single serial process receives subtree elements (vertices, then edges,
in any order subject to "a vertex must be processed before any edge that
contains it") and maintains the merge tree of everything seen so far via
chain-merge edge insertion. A vertex is *finalized* once its last incident
edge has been processed; finalized counts drive the low-memory-footprint
accounting the paper relies on (§III: finalized elements are written out
and dropped from working memory).

The resulting tree is *augmented*: every streamed vertex is a node, with
regular vertices forming chains along arcs. Use
:meth:`~repro.analysis.topology.merge_tree.MergeTree.reduced` to obtain
the critical structure.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.topology.merge_tree import MergeTree
from repro.backend import kernel


class StreamingGlue:
    """Incremental merge tree over streamed vertices and edges."""

    def __init__(self) -> None:
        self._value: dict[int, float] = {}
        self._parent: dict[int, int | None] = {}
        #: Declared incident-edge budget per vertex (None = undeclared).
        self._remaining_edges: dict[int, int | None] = {}
        self.n_edges = 0
        self.finalized: set[int] = set()
        #: High-water mark of simultaneously unfinalized vertices.
        self.peak_live_vertices = 0
        self._live = 0

    # -- streaming input ----------------------------------------------------------

    def add_vertex(self, vertex_id: int, value: float,
                   n_incident_edges: int | None = None) -> None:
        """Declare a vertex (must precede any edge naming it)."""
        vid = int(vertex_id)
        if vid in self._value:
            raise ValueError(f"vertex {vid} already streamed")
        if n_incident_edges is not None and n_incident_edges < 0:
            raise ValueError("n_incident_edges must be >= 0")
        self._value[vid] = float(value)
        self._parent[vid] = None
        self._remaining_edges[vid] = n_incident_edges
        if n_incident_edges == 0:
            self.finalized.add(vid)
        else:
            self._live += 1
            self.peak_live_vertices = max(self.peak_live_vertices, self._live)

    def _higher(self, a: int, b: int) -> bool:
        return (self._value[a], a) > (self._value[b], b)

    def add_edge(self, u: int, v: int) -> None:
        """Insert an edge; merges the two descending root-paths.

        This is the chain-merge at the core of streaming merge-tree
        maintenance: the sorted (by sweep order) paths from ``u`` and ``v``
        to their roots are interleaved so that every node's parent becomes
        the next lower node of the combined component.
        """
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self-edge on vertex {u}")
        for x in (u, v):
            if x not in self._value:
                raise KeyError(
                    f"edge ({u},{v}) streamed before vertex {x} was declared")
        self.n_edges += 1
        self._consume_edge_budget(u)
        self._consume_edge_budget(v)

        parent = self._parent
        while u != v:
            if self._higher(v, u):
                u, v = v, u  # keep u the higher endpoint
            w = parent[u]
            if w is None:
                parent[u] = v
                u = v
            elif w == v:
                return
            elif self._higher(v, w):
                # v slots in between u and w; continue merging v's chain with w.
                parent[u] = v
                u, v = v, w
            else:
                u = w

    def _consume_edge_budget(self, vid: int) -> None:
        budget = self._remaining_edges[vid]
        if budget is None:
            return
        if budget == 0:
            raise RuntimeError(
                f"vertex {vid} received more edges than its declared budget")
        budget -= 1
        self._remaining_edges[vid] = budget
        if budget == 0:
            self.finalized.add(vid)
            self._live -= 1

    # -- output ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self._value)

    def all_finalized(self) -> bool:
        """True when every declared edge budget has been consumed."""
        return all(b in (None, 0) for b in self._remaining_edges.values())

    def finalize(self) -> MergeTree:
        """Return the merge tree of everything streamed so far."""
        tree = MergeTree()
        for vid, val in self._value.items():
            tree.add_node(vid, val)
        for vid, par in self._parent.items():
            if par is not None:
                tree.set_parent(vid, par)
        return tree


@kernel("topology.graph_merge_tree")
def compute_merge_tree_graph(values: dict[int, float],
                             edges: list[tuple[int, int]]) -> MergeTree:
    """Batch reference: augmented merge tree of an arbitrary graph.

    Sweeps vertices in descending (value, id) order with union-find; every
    vertex becomes a node (chains included), matching
    :class:`StreamingGlue`'s augmented output. Used to verify the
    streaming algorithm and as an independent oracle in tests. Backend
    seam: the numpy backend lexsorts the sweep order and compacts the
    adjacency vectorially, then runs the identical sweep.
    """
    if not values:
        raise ValueError("cannot compute the merge tree of an empty graph")
    ids = sorted(values)
    index = {vid: i for i, vid in enumerate(ids)}
    adjacency: dict[int, list[int]] = {vid: [] for vid in ids}
    for u, v in edges:
        if u not in values or v not in values:
            raise KeyError(f"edge ({u},{v}) references unknown vertex")
        adjacency[u].append(v)
        adjacency[v].append(u)

    order = sorted(ids, key=lambda vid: (values[vid], vid), reverse=True)
    parent_uf = list(range(len(ids)))

    def find(x: int) -> int:
        while parent_uf[x] != x:
            parent_uf[x] = parent_uf[parent_uf[x]]
            x = parent_uf[x]
        return x

    tree = MergeTree()
    processed: set[int] = set()
    latest: dict[int, int] = {}  # uf-root -> most recent vertex in component
    for vid in order:
        tree.add_node(vid, values[vid])
        roots = []
        for nb in adjacency[vid]:
            if nb in processed:
                r = find(index[nb])
                if r not in roots:
                    roots.append(r)
        processed.add(vid)
        me = index[vid]
        for r in roots:
            tree.set_parent(latest[r], vid)
            parent_uf[r] = me
        latest[find(me)] = vid
    return tree
