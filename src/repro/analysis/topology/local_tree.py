"""The in-situ stage: boundary trees (subtrees with topological ghost cells).

Each rank computes the merge tree of its block with the batch algorithm,
then reduces it to the *boundary tree*: the smallest structure a remote
glue stage needs to reconstruct global topology. Per [47] (and §III's
"boundary components that are the topological equivalent of simulation
ghost-cells") the retained vertex set is

* every critical vertex of the local tree (leaves, saddles, roots), and
* every vertex on the block's boundary faces.

Interior regular vertices are contracted away: along a monotone arc the
superlevel connectivity between retained vertices is fully described by
the chain of retained vertices in sweep order, so contraction loses
nothing (tested against the global tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.topology.merge_tree import MergeTree, compute_merge_tree


@dataclass
class BoundaryTree:
    """A reduced subtree: what one rank ships to the in-transit glue.

    ``edges`` are (higher, lower) pairs in sweep order; ``boundary_ids``
    are the retained boundary vertices (the glue attaches cross-block
    edges to these).
    """

    nodes: dict[int, float]
    edges: list[tuple[int, int]]
    boundary_ids: list[int]
    n_block_cells: int = 0

    @property
    def nbytes(self) -> int:
        """Wire size: (id, value) per node + 2 ids per edge, 8 B each."""
        return 16 * len(self.nodes) + 16 * len(self.edges)

    def validate(self) -> None:
        for hi, lo in self.edges:
            if hi not in self.nodes or lo not in self.nodes:
                raise AssertionError(f"edge ({hi},{lo}) references missing node")
            if (self.nodes[hi], hi) <= (self.nodes[lo], lo):
                raise AssertionError(f"edge ({hi},{lo}) not descending")
        for b in self.boundary_ids:
            if b not in self.nodes:
                raise AssertionError(f"boundary vertex {b} not retained")


def compute_boundary_tree(block_values: np.ndarray, id_map: np.ndarray,
                          boundary_mask: np.ndarray) -> BoundaryTree:
    """Compute the boundary tree of one block.

    ``block_values``: the rank's scalar sub-brick. ``id_map``: global
    vertex ids, same shape. ``boundary_mask``: True where the vertex lies
    on a face shared with another block (see
    :func:`~repro.analysis.topology.distributed.block_boundary_mask`).
    """
    block_values = np.asarray(block_values, dtype=np.float64)
    if id_map.shape != block_values.shape or boundary_mask.shape != block_values.shape:
        raise ValueError("block_values, id_map and boundary_mask shapes must match")

    tree, vertex_arc = compute_merge_tree(block_values, id_map=id_map)
    flat_vals = block_values.ravel()
    flat_ids = np.asarray(id_map).ravel()
    flat_arc = np.asarray(vertex_arc).ravel()
    flat_boundary = np.asarray(boundary_mask).ravel()

    value_of = {int(i): float(v) for i, v in zip(flat_ids, flat_vals)}

    critical = set(tree.value)
    boundary_ids = [int(i) for i in flat_ids[flat_boundary]]
    retained = critical | set(boundary_ids)

    # Group retained regular vertices by the arc (upper node) they lie on.
    on_arc: dict[int, list[int]] = {}
    for i, arc in zip(flat_ids, flat_arc):
        gid = int(i)
        if gid in retained and gid not in critical:
            on_arc.setdefault(int(arc), []).append(gid)

    nodes = {gid: value_of[gid] for gid in retained}
    edges: list[tuple[int, int]] = []
    for upper in tree.value:
        chain = on_arc.get(upper, [])
        # Sort descending in the sweep order (value, id); the arc runs from
        # `upper` down through the retained regulars to upper's parent.
        chain.sort(key=lambda g: (value_of[g], g), reverse=True)
        prev = upper
        for gid in chain:
            edges.append((prev, gid))
            prev = gid
        parent = tree.parent[upper]
        if parent is not None:
            edges.append((prev, int(parent)))

    bt = BoundaryTree(nodes=nodes, edges=edges,
                      boundary_ids=sorted(set(boundary_ids)),
                      n_block_cells=int(block_values.size))
    return bt
