"""Persistence pairing (elder rule) and topological simplification.

"When combined with topological simplification and filtering, the
resulting merge tree encodes a family of segmentations" (§III). Each
local maximum is paired with the saddle where its branch merges into a
branch carrying a higher maximum; *persistence* is the value span of the
branch. Simplification removes branches below a persistence threshold,
leaving the features scientists track (burning regions, ignition kernels,
eddies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.topology.merge_tree import MergeTree


@dataclass(frozen=True)
class PersistencePair:
    """One branch: a maximum, the saddle where it dies, and its span."""

    maximum: int
    saddle: int | None     # None for each component's global maximum
    persistence: float     # inf for the global maximum


def representative_maxima(tree: MergeTree) -> dict[int, int]:
    """For every node, the highest maximum in its superlevel subtree.

    The "representative" is the elder-rule survivor: the leaf with the
    greatest (value, id) reachable going upward from the node.
    """
    rep: dict[int, int] = {}

    def order_key(leaf: int) -> tuple[float, int]:
        return (tree.value[leaf], leaf)

    # Process nodes from highest to lowest so children are done first.
    for node in sorted(tree.value, key=lambda n: (tree.value[n], n), reverse=True):
        kids = tree.children(node)
        if not kids:
            rep[node] = node
        else:
            rep[node] = max((rep[k] for k in kids), key=order_key)
    return rep


def persistence_pairs(tree: MergeTree) -> list[PersistencePair]:
    """Elder-rule pairing of every maximum in the tree.

    At each saddle, the child branch whose representative maximum is
    highest survives; every other child branch's representative dies
    there. Works on augmented trees too (chain nodes are transparent).
    """
    rep = representative_maxima(tree)
    pairs: list[PersistencePair] = []
    paired: set[int] = set()
    for node in tree.value:
        kids = tree.children(node)
        if len(kids) < 2:
            continue
        survivor = rep[node]
        for k in kids:
            if rep[k] != survivor and rep[k] not in paired:
                paired.add(rep[k])
                pairs.append(PersistencePair(
                    maximum=rep[k], saddle=node,
                    persistence=tree.value[rep[k]] - tree.value[node]))
    for root in tree.roots():
        m = rep[root]
        if m not in paired:
            pairs.append(PersistencePair(maximum=m, saddle=None,
                                         persistence=float("inf")))
    pairs.sort(key=lambda p: (-p.persistence, p.maximum))
    return pairs


def simplify(tree: MergeTree, threshold: float) -> MergeTree:
    """Remove branches with persistence below ``threshold``.

    Returns a new *reduced* tree whose leaves are exactly the maxima with
    persistence >= threshold (component-global maxima always survive).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    base = tree.reduced()
    pairs = persistence_pairs(base)
    keep_leaves = {p.maximum for p in pairs if p.persistence >= threshold}
    if not keep_leaves:
        raise AssertionError("component maxima have infinite persistence")

    out = MergeTree()
    # For each kept leaf, walk down recording the path; saddles where two
    # kept paths first meet are the surviving saddles.
    owner: dict[int, int] = {}
    surviving_saddles: set[int] = set()
    for leaf in sorted(keep_leaves, key=lambda m: (base.value[m], m),
                       reverse=True):
        node: int | None = leaf
        while node is not None:
            if node in owner:
                surviving_saddles.add(node)
                break
            owner[node] = leaf
            node = base.parent[node]

    kept_nodes = keep_leaves | surviving_saddles
    for n in kept_nodes:
        out.add_node(n, base.value[n])
    for n in kept_nodes:
        p = base.parent[n]
        while p is not None and p not in kept_nodes:
            p = base.parent[p]
        if p is not None and p != n:
            out.set_parent(n, p)
    return out.reduced()


def surviving_maximum_map(tree: MergeTree, threshold: float) -> dict[int, int]:
    """Map every maximum to the surviving maximum after simplification.

    A maximum with persistence below ``threshold`` is absorbed by the
    representative maximum at its pair saddle (applied transitively).
    Used by segmentation to relabel feature regions.
    """
    base = tree.reduced()
    rep = representative_maxima(base)
    pairs = {p.maximum: p for p in persistence_pairs(base)}
    absorb: dict[int, int] = {}
    for m, pair in pairs.items():
        if pair.saddle is not None and pair.persistence < threshold:
            absorb[m] = rep[pair.saddle]
    out: dict[int, int] = {}
    for m in pairs:
        cur = m
        seen = {cur}
        while cur in absorb:
            cur = absorb[cur]
            if cur in seen:
                raise AssertionError("cycle in absorption chain")
            seen.add(cur)
        out[m] = cur
    return out
