"""Branch decomposition and persistence diagrams.

The elder-rule branch decomposition underlies the "family of
segmentations" view of §III: every maximum owns the monotone branch from
itself down to the saddle where its component is absorbed by an older
(higher) branch. The persistence diagram is the (death, birth) scatter of
those branches — the standard summary used to choose simplification
thresholds and to compare timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.topology.merge_tree import MergeTree
from repro.analysis.topology.simplify import persistence_pairs


@dataclass(frozen=True)
class Branch:
    """One monotone branch of the decomposition."""

    maximum: int
    #: Saddle where the branch is absorbed (None for component maxima).
    saddle: int | None
    birth: float     # f at the maximum (features appear sweeping down)
    death: float     # f at the saddle (-inf for the everlasting branch)
    #: Tree nodes on the branch, from the maximum down to (excluding) the
    #: absorbing saddle.
    nodes: tuple[int, ...]

    @property
    def persistence(self) -> float:
        return self.birth - self.death


def branch_decomposition(tree: MergeTree) -> list[Branch]:
    """Elder-rule decomposition of a (possibly augmented) merge tree.

    Every node belongs to exactly one branch; branches are returned most
    persistent first. The union of branch node sets partitions the tree
    (asserted by tests).
    """
    base = tree.reduced()
    pairs = persistence_pairs(base)
    owner: dict[int, int] = {}

    # Walk down from each maximum in descending persistence order; a
    # branch claims nodes until it reaches one already claimed (its
    # absorbing saddle belongs to the older branch).
    branches: list[Branch] = []
    for pair in pairs:  # already sorted most persistent first
        nodes: list[int] = []
        node: int | None = pair.maximum
        while node is not None and node not in owner:
            owner[node] = pair.maximum
            nodes.append(node)
            node = base.parent[node]
        death = (base.value[pair.saddle] if pair.saddle is not None
                 else float("-inf"))
        branches.append(Branch(
            maximum=pair.maximum, saddle=pair.saddle,
            birth=base.value[pair.maximum], death=death,
            nodes=tuple(nodes)))
    return branches


def persistence_diagram(tree: MergeTree,
                        finite_only: bool = False) -> np.ndarray:
    """(n, 2) array of (death, birth) pairs, one per maximum.

    The everlasting branch's death is -inf; pass ``finite_only=True`` to
    drop it (usual for plotting / distances).
    """
    pts = []
    for p in persistence_pairs(tree.reduced()):
        death = (tree.reduced().value[p.saddle] if p.saddle is not None
                 else float("-inf"))
        birth = tree.reduced().value[p.maximum]
        if finite_only and not np.isfinite(death):
            continue
        pts.append((death, birth))
    if not pts:
        return np.empty((0, 2))
    return np.array(pts, dtype=np.float64)


def diagram_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1-Wasserstein distance between the *persistence profiles* of two
    finite diagrams.

    This compares the sorted persistence sequences (padding with zeros —
    points on the diagonal), not full 2-D optimal transport; it is a
    cheap, stable lower bound adequate for detecting topology change
    between consecutive timesteps.
    """
    for d in (a, b):
        d = np.asarray(d)
        if d.ndim != 2 or (d.size and d.shape[1] != 2):
            raise ValueError(f"diagram must be (n, 2), got {d.shape}")
    pa = np.sort(a[:, 1] - a[:, 0])[::-1] if len(a) else np.empty(0)
    pb = np.sort(b[:, 1] - b[:, 0])[::-1] if len(b) else np.empty(0)
    if not (np.all(np.isfinite(pa)) and np.all(np.isfinite(pb))):
        raise ValueError("diagram_distance requires finite diagrams "
                         "(use finite_only=True)")
    n = max(len(pa), len(pb))
    if n == 0:
        return 0.0
    pa = np.pad(pa, (0, n - len(pa)))
    pb = np.pad(pb, (0, n - len(pb)))
    return float(np.abs(pa - pb).sum())
