"""Overlap-based feature tracking across timesteps (Fig. 1).

The paper's motivating figure tracks a small vortical structure over five
consecutive steps and shows the overlap between the first and fifth — the
"connectivity indicators [that] are lost with conventional post-processing
when the temporal length-scale of features is shorter than the frequency
at which data is written to disk."

Tracking is the standard spatial-overlap association: features in
consecutive segmentations are linked when their cell sets overlap, with
greedy resolution by overlap size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.topology.segmentation import Segmentation


def overlap_matrix(a: Segmentation, b: Segmentation) -> dict[tuple[int, int], int]:
    """Cell-count overlaps between features of two segmentations."""
    if a.labels.shape != b.labels.shape:
        raise ValueError(
            f"segmentation shapes differ: {a.labels.shape} vs {b.labels.shape}")
    both = (a.labels >= 0) & (b.labels >= 0)
    la = a.labels[both]
    lb = b.labels[both]
    out: dict[tuple[int, int], int] = {}
    if la.size:
        pairs = np.stack([la, lb], axis=1)
        uniq, counts = np.unique(pairs, axis=0, return_counts=True)
        for (x, y), c in zip(uniq, counts):
            out[(int(x), int(y))] = int(c)
    return out


def jaccard(a: Segmentation, label_a: int, b: Segmentation, label_b: int) -> float:
    """Jaccard index of two feature regions (the Fig.-1 overlap measure)."""
    ma = a.mask(label_a)
    mb = b.mask(label_b)
    union = np.count_nonzero(ma | mb)
    if union == 0:
        return 0.0
    return np.count_nonzero(ma & mb) / union


@dataclass
class FeatureTrack:
    """One feature's life: (timestep, label) observations in step order."""

    track_id: int
    steps: list[int] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    @property
    def birth(self) -> int:
        return self.steps[0]

    @property
    def death(self) -> int:
        return self.steps[-1]

    @property
    def lifetime(self) -> int:
        """Number of steps the feature was observed."""
        return len(self.steps)


def track_features(segmentations: list[Segmentation],
                   steps: list[int] | None = None,
                   min_overlap_cells: int = 1) -> list[FeatureTrack]:
    """Greedy max-overlap association across a segmentation sequence.

    Each feature at step t links to at most one feature at step t+1 and
    vice versa (largest overlaps first). Unlinked features start new
    tracks; tracks without a successor end.
    """
    if steps is None:
        steps = list(range(len(segmentations)))
    if len(steps) != len(segmentations):
        raise ValueError("steps and segmentations must have equal length")
    if min_overlap_cells < 1:
        raise ValueError("min_overlap_cells must be >= 1")

    tracks: list[FeatureTrack] = []
    #: feature label at current step -> owning track
    current: dict[int, FeatureTrack] = {}

    for i, seg in enumerate(segmentations):
        if i == 0:
            for label in seg.features:
                t = FeatureTrack(track_id=len(tracks))
                t.steps.append(steps[0])
                t.labels.append(label)
                tracks.append(t)
                current[label] = t
            continue

        prev_seg = segmentations[i - 1]
        overlaps = overlap_matrix(prev_seg, seg)
        # Greedy: biggest overlaps first; deterministic tie-break on labels.
        order = sorted(overlaps.items(), key=lambda kv: (-kv[1], kv[0]))
        linked_prev: set[int] = set()
        linked_next: set[int] = set()
        next_current: dict[int, FeatureTrack] = {}
        for (pa, pb), count in order:
            if count < min_overlap_cells:
                continue
            if pa in linked_prev or pb in linked_next:
                continue
            track = current.get(pa)
            if track is None:
                continue
            track.steps.append(steps[i])
            track.labels.append(pb)
            linked_prev.add(pa)
            linked_next.add(pb)
            next_current[pb] = track
        for label in seg.features:
            if label not in linked_next:
                t = FeatureTrack(track_id=len(tracks))
                t.steps.append(steps[i])
                t.labels.append(label)
                tracks.append(t)
                next_current[label] = t
        current = next_current
    return tracks
