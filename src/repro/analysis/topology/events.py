"""Topological event detection between consecutive segmentations.

Greedy 1-1 tracking (:mod:`~repro.analysis.topology.tracking`) follows a
feature's identity; *events* classify what happened to everything else:
births, deaths, merges (several features at t overlap one at t+1 — e.g.
ignition kernels joining the flame base) and splits (one feature at t
overlaps several at t+1 — e.g. an extinction event cutting a burning
region apart). These are the transition signatures feature-based analyses
of combustion data report [30], [43].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.topology.segmentation import Segmentation
from repro.analysis.topology.tracking import overlap_matrix


class EventKind(enum.Enum):
    BIRTH = "birth"          # feature at t+1 with no antecedent
    DEATH = "death"          # feature at t with no successor
    CONTINUATION = "continuation"  # 1-1 overlap
    MERGE = "merge"          # >=2 features at t -> 1 feature at t+1
    SPLIT = "split"          # 1 feature at t -> >=2 features at t+1


@dataclass(frozen=True)
class Event:
    """One transition between consecutive segmentations."""

    kind: EventKind
    #: Labels at step t participating in the event (empty for births).
    parents: tuple[int, ...]
    #: Labels at step t+1 participating (empty for deaths).
    children: tuple[int, ...]


def detect_events(prev: Segmentation, curr: Segmentation,
                  min_overlap_cells: int = 1) -> list[Event]:
    """Classify every feature transition between two segmentations.

    The overlap bipartite graph (thresholded at ``min_overlap_cells``) is
    decomposed into connected components; each component's parent/child
    counts determine the event kind. A many-to-many component is reported
    as a MERGE (the dominant interpretation for superlevel features, where
    simultaneous split+merge is a saddle crossing).
    """
    if min_overlap_cells < 1:
        raise ValueError("min_overlap_cells must be >= 1")
    overlaps = {k: v for k, v in overlap_matrix(prev, curr).items()
                if v >= min_overlap_cells}

    parents_all = set(prev.features)
    children_all = set(curr.features)

    # Union-find over the bipartite overlap graph.
    # Nodes: ("p", label) and ("c", label).
    parent_of: dict[tuple[str, int], tuple[str, int]] = {}

    def find(x):
        while parent_of.setdefault(x, x) != x:
            parent_of[x] = parent_of[parent_of[x]]
            x = parent_of[x]
        return x

    def union(x, y):
        rx, ry = find(x), find(y)
        if rx != ry:
            parent_of[rx] = ry

    for (pa, cb) in overlaps:
        union(("p", pa), ("c", cb))

    components: dict[tuple[str, int], tuple[set[int], set[int]]] = {}
    for pa in parents_all:
        node = ("p", pa)
        if node in parent_of:
            root = find(node)
            components.setdefault(root, (set(), set()))[0].add(pa)
    for cb in children_all:
        node = ("c", cb)
        if node in parent_of:
            root = find(node)
            components.setdefault(root, (set(), set()))[1].add(cb)

    events: list[Event] = []
    linked_parents: set[int] = set()
    linked_children: set[int] = set()
    for ps, cs in components.values():
        linked_parents |= ps
        linked_children |= cs
        if len(ps) == 1 and len(cs) == 1:
            kind = EventKind.CONTINUATION
        elif len(ps) >= 2 and len(cs) == 1:
            kind = EventKind.MERGE
        elif len(ps) == 1 and len(cs) >= 2:
            kind = EventKind.SPLIT
        else:
            kind = EventKind.MERGE  # many-to-many: saddle crossing
        events.append(Event(kind=kind, parents=tuple(sorted(ps)),
                            children=tuple(sorted(cs))))

    for pa in sorted(parents_all - linked_parents):
        events.append(Event(EventKind.DEATH, parents=(pa,), children=()))
    for cb in sorted(children_all - linked_children):
        events.append(Event(EventKind.BIRTH, parents=(), children=(cb,)))
    events.sort(key=lambda e: (e.kind.value, e.parents, e.children))
    return events


def event_counts(events: list[Event]) -> dict[EventKind, int]:
    """Histogram of event kinds (the per-step summary a monitor reports)."""
    out = {kind: 0 for kind in EventKind}
    for e in events:
        out[e.kind] += 1
    return out
