"""Feature-based statistics: merge-tree segmentation x moment statistics.

Paper §VI: "we plan ... combining the merge tree computation presented in
this work with statistical analyses to enable the computation of
feature-based statistics such as those present in the corresponding
post-processing tools [30], [43]."

The hybrid formulation composes the two existing pipelines:

* **in-situ** — each rank, given the (already in-situ) feature labels of
  its block, accumulates one :class:`MomentAccumulator` per (feature,
  variable) over the cells it owns — tiny, mergeable partial models;
* **in-transit** — a serial stage merges partials by feature id and
  derives per-feature descriptive statistics (conditional statistics of
  any variable over each burning region / ignition kernel / eddy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.statistics.moments import MomentAccumulator, merge_accumulators
from repro.analysis.statistics.stages import DerivedStatistics, derive
from repro.analysis.topology.segmentation import Segmentation

#: partial models: {feature label: {variable: accumulator}}
FeaturePartials = dict[int, dict[str, MomentAccumulator]]


def learn_feature_partials(labels_block: np.ndarray,
                           fields_block: dict[str, np.ndarray]
                           ) -> FeaturePartials:
    """The in-situ stage for one rank.

    ``labels_block``: this rank's slice of the segmentation labels
    (-1 = background). ``fields_block``: this rank's blocks of the
    variables to condition.
    """
    labels_block = np.asarray(labels_block)
    out: FeaturePartials = {}
    feature_ids = np.unique(labels_block[labels_block >= 0])
    for fid in feature_ids:
        mask = labels_block == fid
        per_var: dict[str, MomentAccumulator] = {}
        for name, data in fields_block.items():
            data = np.asarray(data)
            if data.shape != labels_block.shape:
                raise ValueError(
                    f"variable {name!r} shape {data.shape} != labels "
                    f"{labels_block.shape}")
            per_var[name] = MomentAccumulator.from_data(data[mask])
        out[int(fid)] = per_var
    return out


def merge_feature_partials(partials: list[FeaturePartials]
                           ) -> FeaturePartials:
    """The in-transit merge: combine per-rank partials by feature id.

    A feature spanning several ranks contributes one partial per rank;
    the pairwise moment-merge reassembles its global statistics exactly.
    """
    by_feature: dict[int, dict[str, list[MomentAccumulator]]] = {}
    for p in partials:
        for fid, per_var in p.items():
            slot = by_feature.setdefault(fid, {})
            for name, acc in per_var.items():
                slot.setdefault(name, []).append(acc)
    return {fid: {name: merge_accumulators(accs)
                  for name, accs in per_var.items()}
            for fid, per_var in by_feature.items()}


@dataclass(frozen=True)
class FeatureStatistics:
    """Derived per-feature conditional statistics."""

    feature: int
    n_cells: int
    statistics: dict[str, DerivedStatistics]


def derive_feature_statistics(merged: FeaturePartials
                              ) -> dict[int, FeatureStatistics]:
    """Derive descriptive statistics for every feature and variable."""
    out: dict[int, FeatureStatistics] = {}
    for fid, per_var in merged.items():
        stats = {name: derive(acc) for name, acc in per_var.items()}
        n_cells = next(iter(per_var.values())).n if per_var else 0
        out[fid] = FeatureStatistics(feature=fid, n_cells=n_cells,
                                     statistics=stats)
    return out


def feature_statistics_hybrid(segmentation: Segmentation,
                              fields: dict[str, np.ndarray],
                              decomp) -> dict[int, FeatureStatistics]:
    """Run the full hybrid pattern on a decomposed domain.

    ``segmentation`` labels and ``fields`` are global; each rank's partial
    is learned from its own block (pure data-parallel), then merged and
    derived as the serial in-transit stage would.
    """
    partials = []
    for block in decomp.blocks():
        labels_block = segmentation.labels[block.slices]
        fields_block = {name: data[block.slices]
                        for name, data in fields.items()}
        partials.append(learn_feature_partials(labels_block, fields_block))
    return derive_feature_statistics(merge_feature_partials(partials))
