"""Hybrid auto-correlative statistics (paper §VI future work).

"We plan to develop a hybrid in-situ/in-transit auto-correlative
statistical technique." This module implements it in the same
learn/derive mold as the descriptive statistics:

* **in-situ learn** — each rank keeps a short ring buffer of its block's
  recent time levels and accumulates, per lag k, the single-pass
  cross-sums ``(n, sum x_t, sum x_{t-k}, sum x_t^2, sum x_{t-k}^2,
  sum x_t x_{t-k})`` over all cells and steps. The accumulator is tiny
  (6 doubles per lag) and mergeable in any order — exactly the property
  that made the moment statistics staging-friendly;
* **in-transit derive** — a serial stage merges the per-rank partials and
  derives the temporal autocorrelation function
  ``rho(k) = cov(x_t, x_{t-k}) / (std(x_t) std(x_{t-k}))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.backend import kernel


@dataclass
class LagAccumulator:
    """Single-pass cross-moment sums for one lag."""

    n: int = 0
    sum_x: float = 0.0     # current values  x_t
    sum_y: float = 0.0     # lagged values   x_{t-k}
    sum_xx: float = 0.0
    sum_yy: float = 0.0
    sum_xy: float = 0.0

    def accumulate(self, current: np.ndarray, lagged: np.ndarray) -> None:
        x = np.asarray(current, dtype=np.float64).ravel()
        y = np.asarray(lagged, dtype=np.float64).ravel()
        if x.shape != y.shape:
            raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
        self.n += x.size
        self.sum_x += float(x.sum())
        self.sum_y += float(y.sum())
        self.sum_xx += float((x * x).sum())
        self.sum_yy += float((y * y).sum())
        self.sum_xy += float((x * y).sum())

    def merge(self, other: "LagAccumulator") -> "LagAccumulator":
        return LagAccumulator(
            n=self.n + other.n,
            sum_x=self.sum_x + other.sum_x,
            sum_y=self.sum_y + other.sum_y,
            sum_xx=self.sum_xx + other.sum_xx,
            sum_yy=self.sum_yy + other.sum_yy,
            sum_xy=self.sum_xy + other.sum_xy,
        )

    def correlation(self) -> float:
        """Pearson correlation of the (x_t, x_{t-k}) sample."""
        if self.n < 2:
            raise ValueError("need at least two samples to correlate")
        n = self.n
        cov = self.sum_xy / n - (self.sum_x / n) * (self.sum_y / n)
        var_x = self.sum_xx / n - (self.sum_x / n) ** 2
        var_y = self.sum_yy / n - (self.sum_y / n) ** 2
        denom = math.sqrt(max(var_x, 0.0)) * math.sqrt(max(var_y, 0.0))
        if denom == 0.0:
            return 0.0
        return min(1.0, max(-1.0, cov / denom))

    PACKED_DOUBLES = 6

    def pack(self) -> np.ndarray:
        return np.array([float(self.n), self.sum_x, self.sum_y,
                         self.sum_xx, self.sum_yy, self.sum_xy])

    @classmethod
    def unpack(cls, vec: np.ndarray) -> "LagAccumulator":
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (cls.PACKED_DOUBLES,):
            raise ValueError(f"expected {cls.PACKED_DOUBLES} doubles, got {vec.shape}")
        return cls(n=int(vec[0]), sum_x=float(vec[1]), sum_y=float(vec[2]),
                   sum_xx=float(vec[3]), sum_yy=float(vec[4]),
                   sum_xy=float(vec[5]))


@kernel("statistics.autocorr_cross_sums")
def _autocorr_cross_sums(current: np.ndarray,
                         history: list[np.ndarray]) -> np.ndarray:
    """Per-lag single-pass cross sums of ``current`` against each lagged
    field; row k-1 holds ``(n, sum x, sum y, sum x^2, sum y^2, sum xy)``
    for ``history[k-1]`` (the lag-k field).

    Backend seam: the numpy backend stacks the history and computes all
    lags' sums in batched axis-wise passes (``sum x`` and ``sum x^2``
    once) — per-row pairwise summation keeps the sums bit-identical.
    """
    x = np.asarray(current, dtype=np.float64).ravel()
    out = np.empty((len(history), 6), dtype=np.float64)
    for i, lagged in enumerate(history):
        y = np.asarray(lagged, dtype=np.float64).ravel()
        if x.shape != y.shape:
            raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
        out[i] = (x.size, float(x.sum()), float(y.sum()),
                  float((x * x).sum()), float((y * y).sum()),
                  float((x * y).sum()))
    return out


@kernel("statistics.autocorr_merge")
def _autocorr_merge(packed_partials: list[np.ndarray],
                    max_lag: int) -> np.ndarray:
    """Left-fold merge of per-rank packed lag partials to ``(max_lag, 6)``.

    Backend seam: the numpy backend reshapes to ``(ranks, max_lag, 6)``
    and folds the rank axis for every lag at once — additions in the same
    rank order, so the merged sums are bit-identical.
    """
    k_doubles = LagAccumulator.PACKED_DOUBLES
    if max_lag == 0:
        return np.empty((0, k_doubles), dtype=np.float64)
    merged = [LagAccumulator() for _ in range(max_lag)]
    for vec in packed_partials:
        for k in range(max_lag):
            acc = LagAccumulator.unpack(
                vec[k * k_doubles:(k + 1) * k_doubles])
            merged[k] = merged[k].merge(acc)
    return np.stack([acc.pack() for acc in merged])


class AutocorrelationLearner:
    """The in-situ stage: one per rank, fed the rank's block every step.

    Keeps a ring buffer of the last ``max_lag`` blocks; each
    :meth:`observe` call updates every lag's accumulator against the
    buffered history.
    """

    def __init__(self, max_lag: int) -> None:
        if max_lag < 1:
            raise ValueError(f"max_lag must be >= 1, got {max_lag}")
        self.max_lag = max_lag
        self._history: list[np.ndarray] = []
        self.lags: dict[int, LagAccumulator] = {
            k: LagAccumulator() for k in range(1, max_lag + 1)}
        self.steps_observed = 0

    @property
    def buffer_bytes(self) -> int:
        """In-situ scratch footprint (the §III memory constraint)."""
        return sum(h.nbytes for h in self._history)

    def observe(self, block: np.ndarray) -> None:
        """Feed this step's block; updates all available lags."""
        block = np.asarray(block, dtype=np.float64)
        n_lags = min(len(self._history), self.max_lag)
        if n_lags:
            sums = _autocorr_cross_sums(
                block, [self._history[-k] for k in range(1, n_lags + 1)])
            for k in range(1, n_lags + 1):
                acc = self.lags[k]
                row = sums[k - 1]
                acc.n += int(row[0])
                acc.sum_x += float(row[1])
                acc.sum_y += float(row[2])
                acc.sum_xx += float(row[3])
                acc.sum_yy += float(row[4])
                acc.sum_xy += float(row[5])
        self._history.append(block.copy())
        if len(self._history) > self.max_lag:
            self._history.pop(0)
        self.steps_observed += 1

    def pack(self) -> np.ndarray:
        """Wire format: max_lag x 6 doubles (the hybrid movement payload)."""
        return np.concatenate([self.lags[k].pack()
                               for k in range(1, self.max_lag + 1)])


def derive_autocorrelation(packed_partials: list[np.ndarray],
                           max_lag: int) -> dict[int, float]:
    """The serial in-transit stage: merge per-rank partials, derive rho(k)."""
    if not packed_partials:
        raise ValueError("no partials to derive from")
    k_doubles = LagAccumulator.PACKED_DOUBLES
    expected = (max_lag * k_doubles,)
    validated = []
    for vec in packed_partials:
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != expected:
            raise ValueError(f"partial has shape {vec.shape}, expected {expected}")
        validated.append(vec)
    rows = _autocorr_merge(validated, max_lag)
    merged = {k: LagAccumulator.unpack(rows[k - 1])
              for k in range(1, max_lag + 1)}
    return {k: acc.correlation() for k, acc in merged.items() if acc.n >= 2}


def reference_autocorrelation(series: np.ndarray, max_lag: int
                              ) -> dict[int, float]:
    """Direct (batch) autocorrelation of a (steps, ...) series, for tests.

    Correlates the flattened fields at t and t-k over all cells and all
    valid step pairs — the same sample the streaming learner accumulates.
    """
    series = np.asarray(series, dtype=np.float64)
    out = {}
    for k in range(1, max_lag + 1):
        if series.shape[0] <= k:
            break
        x = series[k:].ravel()
        y = series[:-k].ravel()
        sx, sy = x.std(), y.std()
        if sx == 0 or sy == 0:
            out[k] = 0.0
        else:
            out[k] = float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
    return out
