"""The two statistics deployments compared in the paper (§III, Fig. 6).

* **Fully in-situ**: every rank learns on its block, an all-to-all model
  exchange (allreduce over accumulators) gives every rank the consistent
  global model, and derive runs redundantly everywhere.
* **Hybrid in-situ/in-transit**: every rank learns on its block, ships its
  *partial* model (7 doubles per variable) to a single serial in-transit
  process, which merges and derives.

Both produce identical global statistics — asserted by tests — and differ
only in where the merge/derive happen and what moves over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.statistics.moments import (
    MomentAccumulator,
    learn_blocks,
    merge_packed_moments,
    moment_merge_op,
)
from repro.analysis.statistics.stages import DerivedStatistics, derive
from repro.vmpi.comm import VirtualComm


@dataclass
class InSituStatisticsResult:
    """Output of the fully in-situ deployment."""

    #: Per-rank copy of the derived model — identical on every rank.
    per_rank_models: list[dict[str, DerivedStatistics]]
    comm_time: float

    @property
    def statistics(self) -> dict[str, DerivedStatistics]:
        return self.per_rank_models[0]


@dataclass
class HybridStatisticsResult:
    """Output of the hybrid deployment."""

    statistics: dict[str, DerivedStatistics]
    #: Wire bytes of all partial models (the "data movement size" column).
    partials_nbytes: int
    n_partials: int


class StatisticsEngine:
    """Runs either deployment over per-rank blocks of named variables."""

    def __init__(self, comm: VirtualComm) -> None:
        self.comm = comm

    # -- stage 1 (shared): per-rank learn --------------------------------------

    def learn_partials(self, per_rank_fields: list[dict[str, np.ndarray]]
                       ) -> list[dict[str, MomentAccumulator]]:
        """Per-rank learn over every variable (entirely data-local)."""
        if len(per_rank_fields) != self.comm.n_ranks:
            raise ValueError(
                f"expected {self.comm.n_ranks} rank blocks, got {len(per_rank_fields)}")
        # Flatten rank-major so one learn_blocks kernel call covers every
        # (rank, variable) block, then rebuild the per-rank dicts.
        layout: list[list[str]] = []
        blocks: list[np.ndarray] = []
        for fields in per_rank_fields:
            names = list(fields)
            layout.append(names)
            blocks.extend(fields[name] for name in names)
        accs = learn_blocks(blocks)
        out: list[dict[str, MomentAccumulator]] = []
        pos = 0
        for names in layout:
            out.append({name: accs[pos + i] for i, name in enumerate(names)})
            pos += len(names)
        return out

    # -- deployment A: fully in-situ ----------------------------------------------

    def run_insitu(self, per_rank_fields: list[dict[str, np.ndarray]]
                   ) -> InSituStatisticsResult:
        """learn everywhere, allreduce-merge, derive everywhere."""
        partials = self.learn_partials(per_rank_fields)
        names = list(partials[0])
        t0 = self.comm.tracker.total_time
        merged_per_rank: list[dict[str, MomentAccumulator]] = [
            {} for _ in range(self.comm.n_ranks)]
        for name in names:
            contributions = [p[name] for p in partials]
            merged = self.comm.allreduce(contributions, moment_merge_op)
            for rank, acc in enumerate(merged):
                merged_per_rank[rank][name] = acc
        comm_time = self.comm.tracker.total_time - t0
        models = [{name: derive(accs[name]) for name in names}
                  for accs in merged_per_rank]
        return InSituStatisticsResult(per_rank_models=models, comm_time=comm_time)

    # -- deployment B: hybrid ------------------------------------------------------

    def pack_partials(self, partials: list[dict[str, MomentAccumulator]]
                      ) -> list[np.ndarray]:
        """Serialise each rank's partial models to the wire format."""
        return [np.concatenate([acc.pack() for acc in p.values()])
                for p in partials]

    def intransit_derive(self, packed: list[np.ndarray], names: list[str]
                         ) -> dict[str, DerivedStatistics]:
        """The serial in-transit stage: unpack, merge, derive."""
        k = MomentAccumulator.PACKED_DOUBLES
        for vec in packed:
            if vec.shape != (k * len(names),):
                raise ValueError(
                    f"packed partial has shape {vec.shape}, expected {(k * len(names),)}")
        merged = merge_packed_moments(list(packed), len(names))
        return {name: derive(merged[i]) for i, name in enumerate(names)}

    def run_hybrid(self, per_rank_fields: list[dict[str, np.ndarray]]
                   ) -> HybridStatisticsResult:
        """learn in-situ, ship partials, merge+derive serially in-transit."""
        partials = self.learn_partials(per_rank_fields)
        names = list(partials[0])
        packed = self.pack_partials(partials)
        nbytes = sum(int(v.nbytes) for v in packed)
        stats = self.intransit_derive(packed, names)
        return HybridStatisticsResult(statistics=stats,
                                      partials_nbytes=nbytes,
                                      n_partials=len(packed))
