"""The four statistics stages of Fig. 4: learn, derive, assess, test.

"The learn stage calculates a primary statistical model from an input data
set. Derive calculates a more detailed statistical model from a minimal
model. The assess stage annotates each observation ... and the test stage
calculates test statistic(s) for hypothesis testing purposes." Only
*learn* communicates; the other three are embarrassingly local.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.statistics.moments import MomentAccumulator


def learn(data: np.ndarray) -> MomentAccumulator:
    """Primary model from raw observations (per-rank, no communication
    here — the exchange happens when partial models are merged)."""
    return MomentAccumulator.from_data(data)


@dataclass(frozen=True)
class DerivedStatistics:
    """The detailed model: descriptive statistics through fourth order."""

    n: int
    minimum: float
    maximum: float
    mean: float
    variance: float       # unbiased (sample) variance
    std: float
    skewness: float       # g1
    kurtosis: float       # excess kurtosis g2

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n, "min": self.minimum, "max": self.maximum,
            "mean": self.mean, "variance": self.variance, "std": self.std,
            "skewness": self.skewness, "kurtosis": self.kurtosis,
        }


def derive(model: MomentAccumulator) -> DerivedStatistics:
    """Minimal model (moments) -> detailed model (descriptive statistics)."""
    n = model.n
    if n < 1:
        raise ValueError("cannot derive statistics from an empty model")
    variance = model.M2 / (n - 1) if n > 1 else 0.0
    if model.M2 > 0 and n > 1:
        m2 = model.M2 / n
        skew = (model.M3 / n) / m2 ** 1.5
        kurt = (model.M4 / n) / (m2 * m2) - 3.0
    else:
        skew = 0.0
        kurt = 0.0
    return DerivedStatistics(
        n=n, minimum=model.minimum, maximum=model.maximum, mean=model.mean,
        variance=variance, std=math.sqrt(max(variance, 0.0)),
        skewness=skew, kurtosis=kurt,
    )


def assess(data: np.ndarray, stats: DerivedStatistics) -> np.ndarray:
    """Annotate each observation with its z-score relative to the model.

    Observations more than a few standard deviations out are exactly the
    "interesting" cells (ignition kernels, extinction events) downstream
    feature detectors consume.
    """
    x = np.asarray(data, dtype=np.float64)
    if stats.std == 0.0:
        return np.zeros_like(x)
    return (x - stats.mean) / stats.std


def test_mean_zscore(stats: DerivedStatistics, mu0: float) -> float:
    """One-sample z statistic for ``H0: mean == mu0`` given the model.

    Uses the model's own variance estimate (large-n regime of the runs the
    paper targets, where z and t coincide).
    """
    if stats.n < 2 or stats.variance == 0.0:
        raise ValueError("test requires n >= 2 and nonzero variance")
    return (stats.mean - mu0) / math.sqrt(stats.variance / stats.n)
