"""Parallel contingency statistics (Pébay/Thompson/Bennett [22]).

Bivariate contingency tables over binned field values, in the same
learn/derive/assess mold:

* **learn** — each rank histograms its block's (x, y) pairs against
  *globally agreed* bin edges; tables merge by addition (trivially
  associative — the design-trade-off point of [22] is exactly that the
  table, not the raw data, is the exchanged model);
* **derive** — chi-square statistic and p-value for independence,
  Cramér's V effect size, and mutual information;
* **assess** — per-observation pointwise mutual information, flagging
  cells whose joint behaviour departs from independence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.backend import kernel


@kernel("statistics.bivariate_histogram")
def _bivariate_histogram(x: np.ndarray, y: np.ndarray, x_edges: np.ndarray,
                         y_edges: np.ndarray,
                         shape: tuple[int, int]) -> np.ndarray:
    """Joint histogram of paired observations against fixed bin edges.

    Out-of-range observations clamp into the edge bins. Backend seam:
    the numpy backend replaces the scatter-add with one ``np.bincount``
    over linearised cell indices — identical integer counts.
    """
    xi = np.clip(np.searchsorted(x_edges, x, side="right") - 1,
                 0, shape[0] - 1)
    yi = np.clip(np.searchsorted(y_edges, y, side="right") - 1,
                 0, shape[1] - 1)
    counts = np.zeros(shape, dtype=np.int64)
    np.add.at(counts, (xi, yi), 1)
    return counts


@dataclass
class ContingencyTable:
    """Joint counts of two binned variables."""

    x_edges: np.ndarray
    y_edges: np.ndarray
    counts: np.ndarray  # (nx_bins, ny_bins) int64

    @classmethod
    def empty(cls, x_edges: np.ndarray, y_edges: np.ndarray
              ) -> "ContingencyTable":
        x_edges = np.asarray(x_edges, dtype=np.float64)
        y_edges = np.asarray(y_edges, dtype=np.float64)
        for name, e in (("x", x_edges), ("y", y_edges)):
            if e.ndim != 1 or e.size < 2:
                raise ValueError(f"{name}_edges needs >= 2 edges")
            if not np.all(np.diff(e) > 0):
                raise ValueError(f"{name}_edges must be strictly increasing")
        return cls(x_edges=x_edges, y_edges=y_edges,
                   counts=np.zeros((x_edges.size - 1, y_edges.size - 1),
                                   dtype=np.int64))

    @classmethod
    def from_data(cls, x: np.ndarray, y: np.ndarray, x_edges: np.ndarray,
                  y_edges: np.ndarray) -> "ContingencyTable":
        """The per-rank learn pass: histogram the block's pairs.

        Out-of-range observations clamp into the edge bins (every cell of
        the domain is classified).
        """
        table = cls.empty(x_edges, y_edges)
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape != y.shape:
            raise ValueError(f"x and y differ in size: {x.size} vs {y.size}")
        table.counts = _bivariate_histogram(x, y, table.x_edges,
                                            table.y_edges,
                                            table.counts.shape)
        return table

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    def merge(self, other: "ContingencyTable") -> "ContingencyTable":
        if (self.counts.shape != other.counts.shape
                or not np.array_equal(self.x_edges, other.x_edges)
                or not np.array_equal(self.y_edges, other.y_edges)):
            raise ValueError("tables must share identical bin edges")
        return ContingencyTable(self.x_edges, self.y_edges,
                                self.counts + other.counts)

    # -- derive ------------------------------------------------------------------

    def marginals(self) -> tuple[np.ndarray, np.ndarray]:
        return self.counts.sum(axis=1), self.counts.sum(axis=0)

    def derive(self) -> "ContingencyStatistics":
        n = self.n
        if n == 0:
            raise ValueError("cannot derive statistics from an empty table")
        # Drop all-zero rows/columns: they carry no evidence and break the
        # chi-square expected-count denominator.
        rows = self.counts.sum(axis=1) > 0
        cols = self.counts.sum(axis=0) > 0
        reduced = self.counts[np.ix_(rows, cols)]
        if reduced.shape[0] < 2 or reduced.shape[1] < 2:
            chi2, p, dof = 0.0, 1.0, 0
        else:
            chi2, p, dof, _ = scipy_stats.chi2_contingency(reduced)
        k = min(reduced.shape) if reduced.size else 1
        cramers_v = (math.sqrt(chi2 / (n * (k - 1)))
                     if n > 0 and k > 1 and chi2 > 0 else 0.0)

        # Mutual information (natural log) from the joint distribution.
        joint = reduced / n if reduced.size else np.zeros((1, 1))
        px = joint.sum(axis=1, keepdims=True)
        py = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (px * py), 1.0)
            mi = float(np.sum(np.where(joint > 0, joint * np.log(ratio), 0.0)))

        return ContingencyStatistics(n=n, chi2=float(chi2), p_value=float(p),
                                     dof=int(dof), cramers_v=float(cramers_v),
                                     mutual_information=max(mi, 0.0))

    # -- assess ----------------------------------------------------------------

    def assess_pmi(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pointwise mutual information of each observation's cell.

        Positive where the pair co-occurs more than independence predicts
        (e.g. high T with high OH inside a flame), negative where less.
        Cells never seen during learn score 0.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape != y.shape:
            raise ValueError("x and y must have equal size")
        n = self.n
        if n == 0:
            raise ValueError("assess requires a learned table")
        joint = self.counts / n
        px = joint.sum(axis=1)
        py = joint.sum(axis=0)
        xi = np.clip(np.searchsorted(self.x_edges, x, side="right") - 1,
                     0, self.counts.shape[0] - 1)
        yi = np.clip(np.searchsorted(self.y_edges, y, side="right") - 1,
                     0, self.counts.shape[1] - 1)
        p_joint = joint[xi, yi]
        p_ind = px[xi] * py[yi]
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.where((p_joint > 0) & (p_ind > 0),
                           np.log(p_joint / p_ind), 0.0)
        return pmi


@dataclass(frozen=True)
class ContingencyStatistics:
    """Derived independence statistics."""

    n: int
    chi2: float
    p_value: float
    dof: int
    cramers_v: float
    mutual_information: float

    @property
    def independent_at_5pct(self) -> bool:
        return self.p_value >= 0.05


def global_edges(data: np.ndarray, n_bins: int) -> np.ndarray:
    """Equal-width bin edges spanning a variable's global range.

    In the deployed system the edges come from the previous step's global
    min/max (already exchanged by the moment statistics), so learn stays
    single-pass.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    data = np.asarray(data, dtype=np.float64)
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        hi = lo + 1.0
    return np.linspace(lo, hi, n_bins + 1)
