"""Descriptive statistics: the four-stage parallel design of Fig. 4.

Implements the numerically stable, single-pass, parallel moment algorithms
of Bennett/Pébay/Roe/Thompson [21]–[23] (the VTK parallel statistics
toolkit the paper deploys):

* :class:`~repro.analysis.statistics.moments.MomentAccumulator` — per-rank
  centered aggregates (cardinality, min/max, M1..M4) with the pairwise
  update formulas, mergeable in any order;
* :mod:`~repro.analysis.statistics.stages` — the four canonical stages:
  **learn** (the only communicating stage), **derive** (moments ->
  mean/variance/skewness/kurtosis), **assess** (per-observation
  annotation), **test** (hypothesis test statistics);
* :class:`~repro.analysis.statistics.engine.StatisticsEngine` — the two
  deployments compared in the paper: fully in-situ (learn+derive with an
  all-to-all model exchange) and hybrid (learn in-situ, partial models
  shipped to a serial in-transit derive).
"""

from repro.analysis.statistics.moments import MomentAccumulator, merge_accumulators
from repro.analysis.statistics.stages import (
    DerivedStatistics,
    assess,
    derive,
    learn,
    test_mean_zscore,
)
from repro.analysis.statistics.engine import (
    HybridStatisticsResult,
    InSituStatisticsResult,
    StatisticsEngine,
)
from repro.analysis.statistics.autocorrelation import (
    AutocorrelationLearner,
    LagAccumulator,
    derive_autocorrelation,
    reference_autocorrelation,
)
from repro.analysis.statistics.multivariate import (
    CovarianceAccumulator,
    merge_covariances,
)
from repro.analysis.statistics.contingency import (
    ContingencyStatistics,
    ContingencyTable,
    global_edges,
)

__all__ = [
    "MomentAccumulator",
    "merge_accumulators",
    "DerivedStatistics",
    "learn",
    "derive",
    "assess",
    "test_mean_zscore",
    "StatisticsEngine",
    "InSituStatisticsResult",
    "HybridStatisticsResult",
    "AutocorrelationLearner",
    "LagAccumulator",
    "derive_autocorrelation",
    "reference_autocorrelation",
    "CovarianceAccumulator",
    "merge_covariances",
    "ContingencyStatistics",
    "ContingencyTable",
    "global_edges",
]
