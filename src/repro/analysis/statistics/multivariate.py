"""Multivariate (correlative) statistics: single-pass parallel covariance.

The parallel statistics toolkit the paper deploys [21], [23] includes
correlative statistics: per-rank accumulation of mean vectors and centered
co-moment matrices, merged pairwise with the multivariate generalisation
of the Pébay update formulas. The hybrid deployment ships
``d + d(d+1)/2 + 1`` doubles per rank — still tiny, still mergeable in any
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CovarianceAccumulator:
    """n observations of a d-vector: mean vector + centered co-moments.

    ``comoment[i, j] = sum_k (x_ki - mean_i)(x_kj - mean_j)``.
    """

    d: int
    n: int = 0
    mean: np.ndarray = field(default=None)  # type: ignore[assignment]
    comoment: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d}")
        if self.mean is None:
            self.mean = np.zeros(self.d)
        if self.comoment is None:
            self.comoment = np.zeros((self.d, self.d))

    @classmethod
    def from_data(cls, columns: dict[str, np.ndarray] | np.ndarray
                  ) -> tuple["CovarianceAccumulator", list[str]]:
        """Accumulate a chunk; ``columns`` maps names to equal-length 1-D
        arrays (or an ``(n, d)`` matrix, yielding numeric names)."""
        if isinstance(columns, dict):
            names = list(columns)
            arrays = [np.asarray(columns[k], dtype=np.float64).ravel()
                      for k in names]
            lengths = {a.size for a in arrays}
            if len(lengths) != 1:
                raise ValueError(f"columns have differing lengths {lengths}")
            X = np.stack(arrays, axis=1)
        else:
            X = np.asarray(columns, dtype=np.float64)
            if X.ndim != 2:
                raise ValueError(f"expected (n, d) data, got shape {X.shape}")
            names = [f"v{i}" for i in range(X.shape[1])]
        if not np.all(np.isfinite(X)):
            raise ValueError("covariance accumulation requires finite data")
        acc = cls(d=X.shape[1])
        if X.shape[0] == 0:
            return acc, names
        acc.n = X.shape[0]
        acc.mean = X.mean(axis=0)
        centered = X - acc.mean
        acc.comoment = centered.T @ centered
        return acc, names

    def merge(self, other: "CovarianceAccumulator") -> "CovarianceAccumulator":
        """Pairwise merge (multivariate Pébay update)."""
        if self.d != other.d:
            raise ValueError(f"dimension mismatch: {self.d} vs {other.d}")
        if other.n == 0:
            return CovarianceAccumulator(self.d, self.n, self.mean.copy(),
                                         self.comoment.copy())
        if self.n == 0:
            return CovarianceAccumulator(other.d, other.n, other.mean.copy(),
                                         other.comoment.copy())
        na, nb = self.n, other.n
        n = na + nb
        delta = other.mean - self.mean
        mean = self.mean + delta * (nb / n)
        comoment = (self.comoment + other.comoment
                    + np.outer(delta, delta) * (na * nb / n))
        return CovarianceAccumulator(self.d, n, mean, comoment)

    # -- derive ----------------------------------------------------------------

    def covariance(self, ddof: int = 1) -> np.ndarray:
        if self.n <= ddof:
            raise ValueError(f"need n > {ddof} observations, have {self.n}")
        return self.comoment / (self.n - ddof)

    def correlation(self) -> np.ndarray:
        """Pearson correlation matrix (unit diagonal; zero-variance
        variables yield zero off-diagonals)."""
        cov = self.covariance()
        std = np.sqrt(np.diag(cov))
        out = np.eye(self.d)
        for i in range(self.d):
            for j in range(self.d):
                if i != j and std[i] > 0 and std[j] > 0:
                    out[i, j] = cov[i, j] / (std[i] * std[j])
        return np.clip(out, -1.0, 1.0)

    # -- wire format ---------------------------------------------------------------

    def pack(self) -> np.ndarray:
        """1 + d + d(d+1)/2 doubles (count, means, upper co-moments)."""
        iu = np.triu_indices(self.d)
        return np.concatenate([[float(self.n)], self.mean,
                               self.comoment[iu]])

    @classmethod
    def unpack(cls, vec: np.ndarray, d: int) -> "CovarianceAccumulator":
        vec = np.asarray(vec, dtype=np.float64)
        expected = 1 + d + d * (d + 1) // 2
        if vec.shape != (expected,):
            raise ValueError(f"expected {expected} doubles for d={d}, "
                             f"got {vec.shape}")
        acc = cls(d=d, n=int(vec[0]), mean=vec[1:1 + d].copy())
        comoment = np.zeros((d, d))
        iu = np.triu_indices(d)
        comoment[iu] = vec[1 + d:]
        comoment = comoment + np.triu(comoment, 1).T
        acc.comoment = comoment
        return acc


def merge_covariances(accs: list[CovarianceAccumulator]
                      ) -> CovarianceAccumulator:
    """Tree-order merge of many accumulators."""
    if not accs:
        raise ValueError("cannot merge an empty accumulator list")
    work = list(accs)
    while len(work) > 1:
        nxt = [work[i].merge(work[i + 1]) for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]
