"""Numerically stable centered-moment accumulators (Pébay formulas).

The in-situ *learn* stage computes, per rank and per variable, the centered
aggregates ``(n, min, max, mean, M2, M3, M4)`` where
``Mk = sum (x - mean)^k``. Aggregates from different ranks merge with the
pairwise update formulas of [21], which are associative and numerically
stable — the property that makes learn a map-reduce and lets the hybrid
deployment ship tiny partial models instead of raw data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import kernel


@dataclass
class MomentAccumulator:
    """Centered aggregates up to fourth order for one variable."""

    n: int = 0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    mean: float = 0.0
    M2: float = 0.0
    M3: float = 0.0
    M4: float = 0.0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_data(cls, data: np.ndarray) -> "MomentAccumulator":
        """Accumulate a data chunk (vectorised single sweep)."""
        x = np.asarray(data, dtype=np.float64).ravel()
        if x.size == 0:
            return cls()
        if not np.all(np.isfinite(x)):
            raise ValueError("moment accumulation requires finite data")
        mean = float(np.mean(x))
        d = x - mean
        d2 = d * d
        return cls(
            n=int(x.size),
            minimum=float(np.min(x)),
            maximum=float(np.max(x)),
            mean=mean,
            M2=float(np.sum(d2)),
            M3=float(np.sum(d2 * d)),
            M4=float(np.sum(d2 * d2)),
        )

    def update(self, value: float) -> None:
        """Streaming single-observation update (Welford/Pébay online form)."""
        n1 = self.n
        self.n += 1
        n = self.n
        delta = value - self.mean
        delta_n = delta / n
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        self.mean += delta_n
        self.M4 += (term1 * delta_n2 * (n * n - 3 * n + 3)
                    + 6.0 * delta_n2 * self.M2 - 4.0 * delta_n * self.M3)
        self.M3 += term1 * delta_n * (n - 2) - 3.0 * delta_n * self.M2
        self.M2 += term1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    # -- pairwise merge (the communication kernel of *learn*) ---------------------

    def merge(self, other: "MomentAccumulator") -> "MomentAccumulator":
        """Combine two accumulators; associative and order-insensitive."""
        if other.n == 0:
            return MomentAccumulator(**vars(self))
        if self.n == 0:
            return MomentAccumulator(**vars(other))
        na, nb = self.n, other.n
        n = na + nb
        delta = other.mean - self.mean
        delta2 = delta * delta

        mean = self.mean + delta * nb / n
        M2 = self.M2 + other.M2 + delta2 * na * nb / n
        M3 = (self.M3 + other.M3
              + delta * delta2 * na * nb * (na - nb) / (n * n)
              + 3.0 * delta * (na * other.M2 - nb * self.M2) / n)
        M4 = (self.M4 + other.M4
              + delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n ** 3)
              + 6.0 * delta2 * (na * na * other.M2 + nb * nb * self.M2) / (n * n)
              + 4.0 * delta * (na * other.M3 - nb * self.M3) / n)
        return MomentAccumulator(
            n=n,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            mean=mean, M2=M2, M3=M3, M4=M4,
        )

    # -- serialisation (what the hybrid deployment moves over the wire) ------------

    PACKED_DOUBLES = 7  # n, min, max, mean, M2, M3, M4

    def pack(self) -> np.ndarray:
        """Serialise to a 7-double vector (the wire format)."""
        return np.array([float(self.n), self.minimum, self.maximum,
                         self.mean, self.M2, self.M3, self.M4], dtype=np.float64)

    @classmethod
    def unpack(cls, vec: np.ndarray) -> "MomentAccumulator":
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (cls.PACKED_DOUBLES,):
            raise ValueError(f"expected {cls.PACKED_DOUBLES} doubles, got {vec.shape}")
        return cls(n=int(vec[0]), minimum=float(vec[1]), maximum=float(vec[2]),
                   mean=float(vec[3]), M2=float(vec[4]), M3=float(vec[5]),
                   M4=float(vec[6]))


def moment_merge_op(a: MomentAccumulator,
                    b: MomentAccumulator) -> MomentAccumulator:
    """Binary reduce operator for collectives over moment accumulators.

    Marked so the numpy backend's ``vmpi.pairwise_reduce`` kernel can
    recognise it and fold the whole reduction tree with the vectorized
    Pébay formulas (the pairing is identical, so results are too).
    """
    return a.merge(b)


moment_merge_op.is_moment_merge = True


@kernel("statistics.learn_blocks")
def learn_blocks(blocks: list[np.ndarray]) -> list[MomentAccumulator]:
    """The batched learn pass: one accumulator per data block.

    Backend seam: the numpy backend stacks same-size blocks and computes
    every block's ``(n, min, max, mean, M2, M3, M4)`` in shared axis-wise
    array passes — per-row sums use the same pairwise summation as the
    per-block reference, so the aggregates are bit-identical.
    """
    return [MomentAccumulator.from_data(b) for b in blocks]


@kernel("statistics.merge_moments")
def merge_accumulators(accs: list[MomentAccumulator]) -> MomentAccumulator:
    """Pairwise (tree-order) merge of many accumulators.

    Backend seam: the numpy backend packs the accumulators into a
    ``(p, 7)`` array and folds whole tree levels with the elementwise
    Pébay formulas — identical pairing and operation order, so the merged
    aggregates are bit-identical.
    """
    if not accs:
        raise ValueError("cannot merge an empty accumulator list")
    work = list(accs)
    while len(work) > 1:
        nxt = [work[i].merge(work[i + 1]) for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


@kernel("statistics.merge_packed_moments")
def merge_packed_moments(packed: list[np.ndarray],
                         n_vars: int) -> list[MomentAccumulator]:
    """Merge rank-major packed partial models; one result per variable.

    ``packed[r]`` holds rank r's ``n_vars`` concatenated 7-double packs.
    The reference unpacks and tree-merges per variable; the numpy backend
    reshapes to ``(ranks, n_vars, 7)`` and folds the rank axis for every
    variable at once.
    """
    k = MomentAccumulator.PACKED_DOUBLES
    per_var: list[list[MomentAccumulator]] = [[] for _ in range(n_vars)]
    for vec in packed:
        vec = np.asarray(vec, dtype=np.float64)
        for i in range(n_vars):
            per_var[i].append(MomentAccumulator.unpack(vec[i * k:(i + 1) * k]))
    return [merge_accumulators(accs) for accs in per_var]
