"""The three reformulated analyses of §III.

* :mod:`repro.analysis.statistics` — descriptive statistics via
  numerically stable, single-pass parallel moment accumulation
  (learn / derive / assess / test, Fig. 4);
* :mod:`repro.analysis.topology` — merge trees: in-situ local subtrees +
  in-transit streaming glue, simplification, segmentation, tracking
  (Figs. 1 and 3);
* :mod:`repro.analysis.visualization` — volume rendering: full-resolution
  in-situ ray casting vs. in-situ down-sampling + in-transit rendering
  with a block look-up table (Fig. 2).
"""
